// Lint pass framework: how verification passes see a program and report.
//
// A Pass makes two kinds of checks: per-function (check_function — the
// Verifier fans these out across functions on a ThreadPool, so they must be
// const and touch only the shared read-only PassContext) and whole-program
// (check_program — run once on the collecting thread, for checks that need
// the call graph's global view). Each worker owns its own DiagnosticSink;
// the Verifier merges and sorts afterwards, so no locking is needed.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/call_graph.h"
#include "analysis/verify/diagnostics.h"
#include "ir/program.h"

namespace firmres::analysis::components {
class LibraryRegistry;
}

namespace firmres::analysis::verify {

/// Everything a pass may consult. Built once per program by the Verifier and
/// shared read-only across worker threads.
struct PassContext {
  const ir::Program& program;
  const CallGraph& call_graph;
};

/// Appends diagnostics to a caller-owned vector, stamping the emitting
/// pass's name on each one.
class DiagnosticSink {
 public:
  DiagnosticSink(std::string_view pass, std::vector<Diagnostic>& out)
      : pass_(pass), out_(out) {}

  void report(Severity severity, const ir::Function* fn, int block,
              int op_index, std::string message) {
    out_.push_back(Diagnostic{
        .severity = severity,
        .pass = std::string(pass_),
        .function = fn != nullptr ? fn->name() : std::string(),
        .block = block,
        .op_index = op_index,
        .message = std::move(message)});
  }

  void error(const ir::Function& fn, int block, int op, std::string msg) {
    report(Severity::Error, &fn, block, op, std::move(msg));
  }
  void warning(const ir::Function& fn, int block, int op, std::string msg) {
    report(Severity::Warning, &fn, block, op, std::move(msg));
  }
  void note(const ir::Function& fn, int block, int op, std::string msg) {
    report(Severity::Note, &fn, block, op, std::move(msg));
  }

 private:
  std::string_view pass_;
  std::vector<Diagnostic>& out_;
};

/// One verification/lint pass. Stateless: check_function runs concurrently
/// for different functions of the same program.
class Pass {
 public:
  virtual ~Pass() = default;
  virtual const char* name() const = 0;

  /// Per-function checks; called for every function, imports included.
  virtual void check_function(const PassContext& ctx, const ir::Function& fn,
                              DiagnosticSink& sink) const = 0;

  /// Whole-program checks; runs once, after the per-function fan-out.
  virtual void check_program(const PassContext& ctx,
                             DiagnosticSink& sink) const {
    (void)ctx;
    (void)sink;
  }
};

// Built-in pass factories (one translation unit each; see docs/LINT.md).
std::unique_ptr<Pass> make_structure_pass();
std::unique_ptr<Pass> make_cfg_pass();
std::unique_ptr<Pass> make_dataflow_pass();
std::unique_ptr<Pass> make_callgraph_pass();
std::unique_ptr<Pass> make_valueflow_pass();
/// Memory def-use lints (docs/POINTSTO.md): stores no load ever reads,
/// tainted loads the points-to index cannot resolve.
std::unique_ptr<Pass> make_pointsto_pass();
/// Component inventory lints (docs/COMPONENTS.md): Warning on a matched
/// known-risky library, Note on a version-ambiguous match. `registry` must
/// outlive the pass.
std::unique_ptr<Pass> make_components_pass(
    const components::LibraryRegistry* registry);

}  // namespace firmres::analysis::verify
