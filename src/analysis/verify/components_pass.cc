// Component inventory lints (docs/COMPONENTS.md).
//
// Matches the program against the supplied LibraryRegistry and reports:
//   - `risky-component-match` (warning): the image embeds a library the
//     registry flags as known-risky — the One-Bad-Apple signal that shared
//     third-party code concentrates the security risk.
//   - `version-ambiguous-component-match` (note): the matched functions
//     are all shared across several versions of the same library, so the
//     inventory cannot pin the version. A note, not a warning: partial
//     linking of a library's shared core is legitimate, but downstream
//     advisories keyed on versions need the caveat.
#include "analysis/components/matcher.h"
#include "analysis/components/registry.h"
#include "analysis/verify/pass.h"
#include "support/strings.h"

namespace firmres::analysis::verify {

namespace {

class ComponentsPass final : public Pass {
 public:
  explicit ComponentsPass(const components::LibraryRegistry* registry)
      : registry_(registry) {}

  const char* name() const override { return "components"; }

  void check_function(const PassContext& ctx, const ir::Function& fn,
                     DiagnosticSink& sink) const override {
    (void)ctx;
    (void)fn;
    (void)sink;  // whole-program matching; see check_program
  }

  void check_program(const PassContext& ctx,
                     DiagnosticSink& sink) const override {
    if (registry_ == nullptr) return;
    const components::MatchResult result =
        components::match_program(ctx.program, *registry_);
    const std::vector<components::ComponentHit> inventory =
        components::component_inventory(*registry_, {&result});
    for (const components::ComponentHit& hit : inventory) {
      if (hit.risky) {
        sink.report(
            Severity::Warning, nullptr, -1, -1,
            support::format(
                "risky-component-match: %s %s (%zu/%zu functions matched)%s%s",
                hit.name.c_str(), hit.version.c_str(), hit.matched_functions,
                hit.total_functions, hit.risk_note.empty() ? "" : ": ",
                hit.risk_note.c_str()));
      }
      if (hit.version_ambiguous) {
        sink.report(
            Severity::Note, nullptr, -1, -1,
            support::format(
                "version-ambiguous-component-match: %s %s matched only "
                "through functions shared with other versions "
                "(%zu matched, none unique)",
                hit.name.c_str(), hit.version.c_str(),
                hit.matched_functions));
      }
    }
  }

 private:
  const components::LibraryRegistry* registry_;
};

}  // namespace

std::unique_ptr<Pass> make_components_pass(
    const components::LibraryRegistry* registry) {
  return std::make_unique<ComponentsPass>(registry);
}

}  // namespace firmres::analysis::verify
