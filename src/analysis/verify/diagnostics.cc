#include "analysis/verify/diagnostics.h"

#include <tuple>

#include "support/strings.h"

namespace firmres::analysis::verify {

const char* severity_name(Severity severity) {
  switch (severity) {
    case Severity::Note: return "note";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "?";
}

std::string Diagnostic::to_string() const {
  std::string loc = function.empty() ? std::string("<program>") : function;
  if (block >= 0) loc += support::format(":b%d", block);
  if (op_index >= 0) loc += support::format(":op%d", op_index);
  return support::format("%s[%s] %s: %s", severity_name(severity),
                         pass.c_str(), loc.c_str(), message.c_str());
}

bool diagnostic_before(const Diagnostic& a, const Diagnostic& b) {
  return std::tie(a.function, a.block, a.op_index, a.pass, a.severity,
                  a.message) < std::tie(b.function, b.block, b.op_index,
                                        b.pass, b.severity, b.message);
}

support::Json diagnostic_to_json(const Diagnostic& d) {
  support::JsonObject obj;
  obj.emplace_back("severity", severity_name(d.severity));
  obj.emplace_back("pass", d.pass);
  obj.emplace_back("function", d.function);
  obj.emplace_back("block", d.block);
  obj.emplace_back("op", d.op_index);
  obj.emplace_back("message", d.message);
  return support::Json(std::move(obj));
}

std::size_t LintReport::count(Severity severity) const {
  std::size_t n = 0;
  for (const Diagnostic& d : diagnostics)
    if (d.severity == severity) ++n;
  return n;
}

std::string LintReport::summary() const {
  const auto plural = [](std::size_t n) { return n == 1 ? "" : "s"; };
  const std::size_t e = errors(), w = warnings(), n = notes();
  return support::format("%zu error%s, %zu warning%s, %zu note%s", e,
                         plural(e), w, plural(w), n, plural(n));
}

support::Json report_to_json(const LintReport& report) {
  support::JsonArray diags;
  for (const Diagnostic& d : report.diagnostics)
    diags.push_back(diagnostic_to_json(d));
  support::JsonObject obj;
  obj.emplace_back("program", report.program);
  obj.emplace_back("errors", static_cast<std::int64_t>(report.errors()));
  obj.emplace_back("warnings", static_cast<std::int64_t>(report.warnings()));
  obj.emplace_back("notes", static_cast<std::int64_t>(report.notes()));
  obj.emplace_back("diagnostics", support::Json(std::move(diags)));
  return support::Json(std::move(obj));
}

}  // namespace firmres::analysis::verify
