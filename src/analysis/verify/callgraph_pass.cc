// Call-graph lints: dangling call targets and asynchrony violations.
//
// Per function: direct calls must name a function that exists in the
// program (the loader/builder auto-registers imports, so a missing symbol
// means a broken deserialization or hand-built program), indirect calls
// through a constant must hit a real function entry, and event registrations
// must pass a resolvable callback. Whole-program: an event-registered
// handler that is *also* invoked directly — or that can recurse into itself —
// breaks the asynchrony property §IV-A keys on (a handler with direct
// callers no longer looks asynchronous, so the executable silently stops
// being identified as device-cloud).
#include <set>
#include <vector>

#include "analysis/verify/pass.h"
#include "ir/library.h"
#include "support/strings.h"

namespace firmres::analysis::verify {

namespace {

bool reaches_itself(const CallGraph& cg, const ir::Function* fn) {
  std::vector<const ir::Function*> stack(cg.callees(fn));
  std::set<const ir::Function*> visited;
  while (!stack.empty()) {
    const ir::Function* cur = stack.back();
    stack.pop_back();
    if (cur == fn) return true;
    if (!visited.insert(cur).second) continue;
    for (const ir::Function* next : cg.callees(cur)) stack.push_back(next);
  }
  return false;
}

class CallGraphPass final : public Pass {
 public:
  const char* name() const override { return "callgraph"; }

  void check_function(const PassContext& ctx, const ir::Function& fn,
                      DiagnosticSink& sink) const override {
    if (fn.is_import()) return;
    const ir::LibraryModel& lib = ir::LibraryModel::instance();
    for (const ir::BasicBlock& b : fn.blocks()) {
      for (std::size_t oi = 0; oi < b.ops.size(); ++oi) {
        const ir::PcodeOp& op = b.ops[oi];
        if (op.opcode == ir::OpCode::Call && !op.callee.empty()) {
          const ir::Function* target = ctx.program.function(op.callee);
          const ir::LibFunction* libfn = lib.find(op.callee);
          if (target == nullptr) {
            sink.error(fn, b.id, static_cast<int>(oi),
                       support::format("call to unknown function '%s'",
                                       std::string(op.callee).c_str()));
          } else if (target->is_import() && libfn == nullptr) {
            sink.note(fn, b.id, static_cast<int>(oi),
                      support::format("import '%s' has no library summary; "
                                      "dataflow will overtaint through it",
                                      std::string(op.callee).c_str()));
          }
          if (libfn != nullptr && libfn->kind == ir::LibKind::EventReg &&
              libfn->callback_arg >= 0) {
            check_callback(ctx, fn, b, op, static_cast<int>(oi),
                           libfn->callback_arg, sink);
          }
        } else if (op.opcode == ir::OpCode::CallInd &&
                   !op.inputs.empty() &&
                   op.inputs[0].space == ir::Space::Const) {
          if (ctx.call_graph.function_at(op.inputs[0].offset) == nullptr)
            sink.error(fn, b.id, static_cast<int>(oi),
                       support::format("indirect call through 0x%llx, which "
                                       "is no function entry",
                                       static_cast<unsigned long long>(
                                           op.inputs[0].offset)));
        }
      }
    }
  }

  void check_program(const PassContext& ctx,
                     DiagnosticSink& sink) const override {
    for (const ir::Function* fn : ctx.program.local_functions()) {
      if (!ctx.call_graph.is_event_registered(fn)) continue;
      if (ctx.call_graph.has_direct_callers(fn))
        sink.warning(*fn, -1, -1,
                     "event-registered handler is also invoked directly "
                     "(breaks the asynchrony assumption of §IV-A)");
      if (reaches_itself(ctx.call_graph, fn))
        sink.warning(*fn, -1, -1,
                     "event-registered handler can recurse into itself");
    }
  }

 private:
  void check_callback(const PassContext& ctx, const ir::Function& fn,
                      const ir::BasicBlock& b, const ir::PcodeOp& op,
                      int oi, int callback_arg, DiagnosticSink& sink) const {
    if (static_cast<std::size_t>(callback_arg) >= op.inputs.size()) {
      sink.error(fn, b.id, oi,
                 support::format("event registration '%s' is missing its "
                                 "callback argument (index %d)",
                                 std::string(op.callee).c_str(), callback_arg));
      return;
    }
    const ir::VarNode& cb = op.inputs[static_cast<std::size_t>(callback_arg)];
    if (cb.space == ir::Space::Const &&
        ctx.call_graph.function_at(cb.offset) == nullptr)
      sink.warning(fn, b.id, oi,
                   support::format("event callback 0x%llx does not resolve "
                                   "to a function",
                                   static_cast<unsigned long long>(cb.offset)));
  }
};

}  // namespace

std::unique_ptr<Pass> make_callgraph_pass() {
  return std::make_unique<CallGraphPass>();
}

}  // namespace firmres::analysis::verify
