// Verifier: pass manager for IR verification and linting (docs/LINT.md).
//
// Runs the registered passes over an ir::Program, fanning the per-function
// checks out across a support::ThreadPool when one is given, then merges
// and sorts the diagnostics into (function, block, op) order — the report is
// byte-identical at any jobs level. The Pipeline's opt-in lint gate and the
// `firmres lint` subcommand sit on top of this; tests use it to assert every
// synthesized corpus program is lint-clean.
#pragma once

#include <cstddef>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/verify/pass.h"
#include "ir/program.h"
#include "support/thread_pool.h"

namespace firmres::analysis::verify {

/// Thrown by verification gates (Pipeline's lint_gate) when a program fails
/// verification. Catching it at corpus level isolates the device, like any
/// other per-device failure.
class VerifyError : public std::runtime_error {
 public:
  explicit VerifyError(const std::string& what) : std::runtime_error(what) {}
};

class Verifier {
 public:
  struct Options {
    bool structure = true;   ///< opcode arity / block shape verifier
    bool cfg = true;         ///< reachability / termination diagnostics
    bool dataflow = true;    ///< use-before-def, dead temps, format strings
    bool call_graph = true;  ///< dangling targets, asynchrony violations
    bool value_flow = true;  ///< unresolved CallInd, LAN-constant folds
    bool points_to = true;   ///< dead stores, unresolvable tainted loads
    /// When set, adds the components pass: risky / version-ambiguous
    /// third-party-library matches (docs/COMPONENTS.md). Not owned; must
    /// outlive the Verifier.
    const components::LibraryRegistry* component_registry = nullptr;
  };

  Verifier() : Verifier(Options{}) {}
  explicit Verifier(Options options);

  /// Verify one program. With a pool, per-function checks run concurrently;
  /// the report is identical to the sequential run.
  LintReport run(const ir::Program& program,
                 support::ThreadPool* pool = nullptr) const;

  const std::vector<std::unique_ptr<Pass>>& passes() const { return passes_; }

 private:
  Options options_;
  std::vector<std::unique_ptr<Pass>> passes_;
};

/// One-line gate failure text: error count plus the first few diagnostics.
std::string gate_message(const LintReport& report, std::size_t max_shown = 3);

}  // namespace firmres::analysis::verify
