#include "analysis/verify/verifier.h"

#include <algorithm>
#include <utility>

#include "support/strings.h"

namespace firmres::analysis::verify {

Verifier::Verifier(Options options) : options_(options) {
  if (options_.structure) passes_.push_back(make_structure_pass());
  if (options_.cfg) passes_.push_back(make_cfg_pass());
  if (options_.dataflow) passes_.push_back(make_dataflow_pass());
  if (options_.call_graph) passes_.push_back(make_callgraph_pass());
  if (options_.value_flow) passes_.push_back(make_valueflow_pass());
  if (options_.points_to) passes_.push_back(make_pointsto_pass());
  if (options_.component_registry != nullptr)
    passes_.push_back(make_components_pass(options_.component_registry));
}

LintReport Verifier::run(const ir::Program& program,
                         support::ThreadPool* pool) const {
  const CallGraph call_graph(program);
  const PassContext ctx{program, call_graph};
  const std::vector<ir::Function*>& fns = program.functions();

  // Per-function fan-out: worker i owns per_fn[i], so no synchronization is
  // needed; the final sort makes the merge order irrelevant.
  std::vector<std::vector<Diagnostic>> per_fn(fns.size());
  const auto check_one = [&](std::size_t i) {
    for (const std::unique_ptr<Pass>& pass : passes_) {
      DiagnosticSink sink(pass->name(), per_fn[i]);
      pass->check_function(ctx, *fns[i], sink);
    }
  };
  if (pool != nullptr && fns.size() > 1) {
    support::parallel_for(*pool, fns.size(), check_one);
  } else {
    for (std::size_t i = 0; i < fns.size(); ++i) check_one(i);
  }

  LintReport report;
  report.program = program.name();
  for (std::vector<Diagnostic>& batch : per_fn)
    for (Diagnostic& d : batch) report.diagnostics.push_back(std::move(d));
  for (const std::unique_ptr<Pass>& pass : passes_) {
    DiagnosticSink sink(pass->name(), report.diagnostics);
    pass->check_program(ctx, sink);
  }
  std::sort(report.diagnostics.begin(), report.diagnostics.end(),
            diagnostic_before);
  return report;
}

std::string gate_message(const LintReport& report, std::size_t max_shown) {
  std::string msg = support::format(
      "IR verification failed for '%s' (%s)", report.program.c_str(),
      report.summary().c_str());
  std::size_t shown = 0;
  for (const Diagnostic& d : report.diagnostics) {
    if (d.severity != Severity::Error) continue;
    if (shown == max_shown) {
      msg += support::format("; … %zu more", report.errors() - shown);
      break;
    }
    msg += (shown == 0 ? ": " : "; ") + d.to_string();
    ++shown;
  }
  return msg;
}

}  // namespace firmres::analysis::verify
