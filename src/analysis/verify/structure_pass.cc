// Structural verifier: the "is this even P-Code" pass.
//
// Checks the local shape every downstream analysis assumes: opcode arity and
// output rules, callee-symbol placement, VarNode sanity (non-zero sizes, no
// writes into the constant space, consistent sizes per storage location),
// block-id/position agreement, successor-id validity, terminator/successor
// consistency, and body-less imports. Violations are Errors: FIRMRES's
// engines index operands by position (flow.h summaries, slices.cc sprintf
// splitting), so an arity violation corrupts analyses silently.
#include <map>
#include <set>
#include <utility>

#include "analysis/verify/pass.h"
#include "ir/opcodes.h"
#include "support/strings.h"

namespace firmres::analysis::verify {

namespace {

struct OpRule {
  int min_inputs = 0;
  int max_inputs = -1;  ///< -1 = unbounded
  enum class Out { Required, Forbidden, Optional } out = Out::Optional;
};

OpRule rule_for(ir::OpCode op) {
  using ir::OpCode;
  using Out = OpRule::Out;
  switch (op) {
    case OpCode::Copy:
    case OpCode::Load:
    case OpCode::IntNegate:
    case OpCode::BoolNegate:
    case OpCode::Cast:
      return {1, 1, Out::Required};
    case OpCode::IntAdd:
    case OpCode::IntSub:
    case OpCode::IntMult:
    case OpCode::IntDiv:
    case OpCode::IntAnd:
    case OpCode::IntOr:
    case OpCode::IntXor:
    case OpCode::IntLeft:
    case OpCode::IntRight:
    case OpCode::IntEqual:
    case OpCode::IntNotEqual:
    case OpCode::IntLess:
    case OpCode::IntSLess:
    case OpCode::IntLessEqual:
    case OpCode::BoolAnd:
    case OpCode::BoolOr:
    case OpCode::Piece:
    case OpCode::SubPiece:
    case OpCode::PtrAdd:
    case OpCode::PtrSub:
      return {2, 2, Out::Required};
    case OpCode::Store:
      return {2, 2, Out::Forbidden};
    case OpCode::Branch:
      return {1, 1, Out::Forbidden};
    case OpCode::CBranch:
      return {2, 2, Out::Forbidden};
    case OpCode::BranchInd:
      return {1, 1, Out::Forbidden};
    case OpCode::Call:
      return {0, -1, Out::Optional};
    case OpCode::CallInd:
      return {1, -1, Out::Optional};
    case OpCode::Return:
      return {0, 1, Out::Forbidden};
  }
  return {};
}

bool is_terminator(const ir::PcodeOp& op) {
  return ir::is_branch(op.opcode) || op.opcode == ir::OpCode::Return;
}

bool succ_contains(const ir::BasicBlock& b, std::uint64_t target) {
  for (const int s : b.successors)
    if (static_cast<std::uint64_t>(s) == target) return true;
  return false;
}

class StructurePass final : public Pass {
 public:
  const char* name() const override { return "structure"; }

  void check_function(const PassContext& ctx, const ir::Function& fn,
                      DiagnosticSink& sink) const override {
    (void)ctx;
    if (fn.is_import()) {
      if (!fn.blocks().empty())
        sink.error(fn, -1, -1,
                   support::format("import function has a body (%zu blocks)",
                                   fn.blocks().size()));
      return;
    }
    if (fn.blocks().empty()) {
      sink.error(fn, -1, -1, "local function has no basic blocks");
      return;
    }

    const std::size_t nblocks = fn.blocks().size();
    for (std::size_t bi = 0; bi < nblocks; ++bi) {
      const ir::BasicBlock& b = fn.blocks()[bi];
      if (b.id != static_cast<int>(bi))
        sink.error(fn, static_cast<int>(bi), -1,
                   support::format("block id %d does not match its position %zu",
                                   b.id, bi));
      check_successors(fn, b, nblocks, sink);
      check_terminator(fn, b, sink);
      for (std::size_t oi = 0; oi < b.ops.size(); ++oi)
        check_op(fn, b, b.ops[oi], static_cast<int>(oi), sink);
    }
    check_size_consistency(fn, sink);
  }

 private:
  void check_successors(const ir::Function& fn, const ir::BasicBlock& b,
                        std::size_t nblocks, DiagnosticSink& sink) const {
    std::set<int> seen;
    for (const int s : b.successors) {
      if (s < 0 || static_cast<std::size_t>(s) >= nblocks)
        sink.error(fn, b.id, -1,
                   support::format("successor b%d is out of range "
                                   "(function has %zu blocks)",
                                   s, nblocks));
      if (!seen.insert(s).second)
        sink.error(fn, b.id, -1,
                   support::format("duplicate successor b%d", s));
    }
  }

  void check_terminator(const ir::Function& fn, const ir::BasicBlock& b,
                        DiagnosticSink& sink) const {
    // Mid-block terminators: everything after them is dead by construction.
    for (std::size_t oi = 0; oi + 1 < b.ops.size(); ++oi) {
      if (is_terminator(b.ops[oi]))
        sink.error(fn, b.id, static_cast<int>(oi),
                   support::format("%s terminator in the middle of a block",
                                   ir::opcode_name(b.ops[oi].opcode)));
    }
    const std::size_t nsucc = b.successors.size();
    const ir::PcodeOp* last = b.ops.empty() ? nullptr : &b.ops.back();
    const int last_index = static_cast<int>(b.ops.size()) - 1;
    if (last == nullptr || !is_terminator(*last)) {
      // Implicit fallthrough is fine with at most one successor; two or more
      // require a conditional terminator to pick between them.
      if (nsucc >= 2)
        sink.error(fn, b.id, -1,
                   support::format("block has %zu successors but does not "
                                   "end in a conditional branch",
                                   nsucc));
      return;
    }
    switch (last->opcode) {
      case ir::OpCode::Branch:
        if (nsucc != 1)
          sink.error(fn, b.id, last_index,
                     support::format("BRANCH block must have exactly 1 "
                                     "successor, has %zu",
                                     nsucc));
        if (!last->inputs.empty() &&
            last->inputs[0].space == ir::Space::Const &&
            !succ_contains(b, last->inputs[0].offset))
          sink.error(fn, b.id, last_index,
                     support::format("BRANCH target b%llu is not recorded as "
                                     "a successor",
                                     static_cast<unsigned long long>(
                                         last->inputs[0].offset)));
        break;
      case ir::OpCode::CBranch:
        if (nsucc != 2)
          sink.error(fn, b.id, last_index,
                     support::format("CBRANCH block must have exactly 2 "
                                     "successors, has %zu",
                                     nsucc));
        if (last->inputs.size() >= 2 &&
            last->inputs[1].space == ir::Space::Const &&
            !succ_contains(b, last->inputs[1].offset))
          sink.error(fn, b.id, last_index,
                     support::format("CBRANCH target b%llu is not recorded "
                                     "as a successor",
                                     static_cast<unsigned long long>(
                                         last->inputs[1].offset)));
        break;
      case ir::OpCode::BranchInd:
        if (nsucc == 0)
          sink.error(fn, b.id, last_index,
                     "BRANCHIND block has no successors");
        break;
      case ir::OpCode::Return:
        if (nsucc != 0)
          sink.error(fn, b.id, last_index,
                     support::format("RETURN block must have 0 successors, "
                                     "has %zu",
                                     nsucc));
        break;
      default:
        break;
    }
  }

  void check_op(const ir::Function& fn, const ir::BasicBlock& b,
                const ir::PcodeOp& op, int oi, DiagnosticSink& sink) const {
    const OpRule rule = rule_for(op.opcode);
    const char* opname = ir::opcode_name(op.opcode);
    const std::size_t nin = op.inputs.size();
    if (static_cast<int>(nin) < rule.min_inputs ||
        (rule.max_inputs >= 0 && static_cast<int>(nin) > rule.max_inputs)) {
      const std::string expect =
          rule.max_inputs < 0
              ? support::format("at least %d", rule.min_inputs)
              : rule.min_inputs == rule.max_inputs
                    ? support::format("%d", rule.min_inputs)
                    : support::format("%d to %d", rule.min_inputs,
                                      rule.max_inputs);
      sink.error(fn, b.id, oi,
                 support::format("%s expects %s input(s), has %zu", opname,
                                 expect.c_str(), nin));
    }
    if (rule.out == OpRule::Out::Required && !op.output.has_value())
      sink.error(fn, b.id, oi,
                 support::format("%s requires an output", opname));
    if (rule.out == OpRule::Out::Forbidden && op.output.has_value())
      sink.error(fn, b.id, oi,
                 support::format("%s must not have an output", opname));

    if (op.opcode == ir::OpCode::Call && op.callee.empty())
      sink.error(fn, b.id, oi, "CALL without a callee symbol");
    if (op.opcode != ir::OpCode::Call && !op.callee.empty())
      sink.error(fn, b.id, oi,
                 support::format("callee symbol '%s' on a %s op",
                                 std::string(op.callee).c_str(), opname));

    if (op.output.has_value()) {
      if (op.output->size == 0)
        sink.error(fn, b.id, oi, "zero-sized output varnode");
      if (op.output->space == ir::Space::Const)
        sink.error(fn, b.id, oi,
                   "output written into the constant space");
      if (ir::is_comparison(op.opcode) && op.output->size != 1)
        sink.error(fn, b.id, oi,
                   support::format("%s output must be a 1-byte boolean, "
                                   "size is %u",
                                   opname, op.output->size));
    }
    for (const ir::VarNode& in : op.inputs) {
      if (in.size == 0) {
        sink.error(fn, b.id, oi, "zero-sized input varnode");
        break;  // one report per op is enough
      }
    }
  }

  /// Same storage location (space, offset) viewed with different sizes
  /// within one function: def/use size inconsistency, usually a lifting or
  /// hand-construction slip.
  void check_size_consistency(const ir::Function& fn,
                              DiagnosticSink& sink) const {
    std::map<std::pair<ir::Space, std::uint64_t>, std::set<std::uint32_t>>
        views;
    const auto record = [&views](const ir::VarNode& v) {
      if (v.space == ir::Space::Const || v.space == ir::Space::Ram) return;
      views[{v.space, v.offset}].insert(v.size);
    };
    for (const ir::VarNode& p : fn.params()) record(p);
    for (const ir::BasicBlock& b : fn.blocks()) {
      for (const ir::PcodeOp& op : b.ops) {
        if (op.output.has_value()) record(*op.output);
        for (const ir::VarNode& in : op.inputs) record(in);
      }
    }
    for (const auto& [loc, sizes] : views) {
      if (sizes.size() < 2) continue;
      std::string list;
      for (const std::uint32_t s : sizes)
        list += support::format(list.empty() ? "%u" : ", %u", s);
      sink.warning(fn, -1, -1,
                   support::format("varnode (%s, 0x%llx) accessed with "
                                   "inconsistent sizes {%s}",
                                   ir::space_name(loc.first),
                                   static_cast<unsigned long long>(loc.second),
                                   list.c_str()));
    }
  }
};

}  // namespace

std::unique_ptr<Pass> make_structure_pass() {
  return std::make_unique<StructurePass>();
}

}  // namespace firmres::analysis::verify
