// CFG diagnostics: reachability and termination shape.
//
// Flags blocks no path from the entry reaches, blocks that fall off the end
// (no successors, not closed by a RETURN), and call-free self-loops (a block
// whose only successor is itself and that performs no calls can neither
// terminate nor make progress — a while(1) event pump, by contrast, calls
// into handlers and is left alone). These are Warnings: the program is
// analyzable, but slices through such regions are suspect.
#include <vector>

#include "analysis/verify/pass.h"
#include "ir/opcodes.h"
#include "support/strings.h"

namespace firmres::analysis::verify {

namespace {

class CfgPass final : public Pass {
 public:
  const char* name() const override { return "cfg"; }

  void check_function(const PassContext& ctx, const ir::Function& fn,
                      DiagnosticSink& sink) const override {
    (void)ctx;
    if (fn.is_import() || fn.blocks().empty()) return;
    const std::size_t nblocks = fn.blocks().size();

    std::vector<bool> reachable(nblocks, false);
    std::vector<int> worklist{0};
    reachable[0] = true;
    while (!worklist.empty()) {
      const int id = worklist.back();
      worklist.pop_back();
      for (const int s : fn.blocks()[static_cast<std::size_t>(id)].successors) {
        if (s < 0 || static_cast<std::size_t>(s) >= nblocks) continue;
        if (!reachable[static_cast<std::size_t>(s)]) {
          reachable[static_cast<std::size_t>(s)] = true;
          worklist.push_back(s);
        }
      }
    }

    // Index and report by block *position*, not by the stored id — a
    // corrupted id is exactly the kind of input this subsystem must survive
    // (the structure pass reports the id/position mismatch itself).
    for (std::size_t bi = 0; bi < nblocks; ++bi) {
      const ir::BasicBlock& b = fn.blocks()[bi];
      const int bid = static_cast<int>(bi);
      if (!reachable[bi]) {
        sink.warning(fn, bid, -1, "block is unreachable from the entry");
        continue;  // one root cause per block
      }
      if (b.successors.empty()) {
        const bool closed =
            !b.ops.empty() && b.ops.back().opcode == ir::OpCode::Return;
        if (!closed)
          sink.warning(fn, bid, -1, "control falls off the end of the block");
      } else {
        bool only_self = true;
        for (const int s : b.successors) only_self = only_self && s == bid;
        bool has_call = false;
        for (const ir::PcodeOp& op : b.ops)
          has_call = has_call || ir::is_call(op.opcode);
        if (only_self && !has_call)
          sink.warning(fn, bid, -1,
                       "block loops on itself with no exit and no calls");
      }
    }
  }
};

}  // namespace

std::unique_ptr<Pass> make_cfg_pass() { return std::make_unique<CfgPass>(); }

}  // namespace firmres::analysis::verify
