#include "analysis/components/matcher.h"

#include <algorithm>

#include "analysis/components/fingerprint.h"
#include "ir/library.h"

namespace firmres::analysis::components {
namespace {

// Live structural certification: true when the function's local solve is a
// pure function of its own op sequence (independent of interprocedural
// summaries and resolution state), so a precomputed environment can stand
// in for it without changing any downstream artifact. Also reports whether
// the body is CBranch-free (exact P_f skip in §IV-A).
bool certify(const ir::Program& program, const ir::Function& fn,
             bool* branchless, std::string* why) {
  if (!fn.params().empty()) {
    *why = "has parameters (summary-dependent boundary)";
    return false;
  }
  bool ok = true;
  bool no_cbranch = true;
  fn.for_each_op([&](const ir::PcodeOp& op) {
    if (!ok) return;
    switch (op.opcode) {
      case ir::OpCode::CBranch:
        no_cbranch = false;
        break;
      case ir::OpCode::CallInd:
      case ir::OpCode::BranchInd:
        ok = false;
        *why = "indirect control flow";
        break;
      case ir::OpCode::Call: {
        const ir::Function* callee = program.function_by_id(op.callee_fn);
        if (callee != nullptr && !callee->is_import()) {
          ok = false;
          *why = "calls local function " + std::string(op.callee);
          break;
        }
        const ir::LibFunction* lib = op.lib();
        if (lib != nullptr && lib->kind == ir::LibKind::EventReg) {
          ok = false;
          *why = "registers event callback via " + std::string(op.callee);
        }
        break;
      }
      default:
        break;
    }
  });
  *branchless = no_cbranch;
  return ok;
}

// Denormalizes a stored environment onto the live function: dense first-use
// indices back to live varnodes. Fails (false) on any index/space/size
// mismatch — should not happen for an honest fingerprint match, but a
// hostile or stale registry must degrade, not corrupt.
bool denormalize_env(const ir::Function& fn,
                     const std::vector<RegistryEnvEntry>& stored,
                     std::map<ir::VarNode, valueflow::Value>* env) {
  const std::map<ir::VarNode, std::uint32_t> index = normalization_map(fn);
  std::vector<const ir::VarNode*> by_index(index.size(), nullptr);
  for (const auto& [var, i] : index) by_index[i] = &var;
  for (const RegistryEnvEntry& e : stored) {
    if (e.index >= by_index.size()) return false;
    const ir::VarNode& var = *by_index[e.index];
    if (static_cast<std::uint8_t>(var.space) != e.space ||
        var.size != e.size)
      return false;
    (*env)[var] = e.value;
  }
  return true;
}

bool refs_consistent(const LibraryRegistry& registry,
                     const std::vector<LibraryRegistry::Ref>& refs) {
  const RegistryFunction& first = registry.function(refs[0]);
  for (std::size_t i = 1; i < refs.size(); ++i) {
    const RegistryFunction& other = registry.function(refs[i]);
    if (other.env != first.env || other.min_sweeps != first.min_sweeps)
      return false;
  }
  return true;
}

}  // namespace

MatchResult match_program(const ir::Program& program,
                          const LibraryRegistry& registry,
                          const MatchOptions& options) {
  MatchResult out;
  for (const ir::Function* fn : program.local_functions()) {
    const std::uint64_t fp = fingerprint_function(program, *fn);
    const std::vector<LibraryRegistry::Ref>* refs = registry.lookup(fp);
    if (refs == nullptr || refs->empty()) continue;

    FunctionMatch match;
    match.fn = fn;
    match.fingerprint = fp;
    match.refs = *refs;
    match.registry_function = registry.function((*refs)[0]).name;

    bool branchless = false;
    std::string why;
    const RegistryFunction& record = registry.function((*refs)[0]);
    if (!refs_consistent(registry, *refs)) {
      match.detail = "conflicting summaries across registry libraries";
    } else if (!certify(program, *fn, &branchless, &why)) {
      match.detail = why;
    } else if (record.min_sweeps > options.max_sweeps) {
      match.detail = "requires more solver sweeps than the live cap";
    } else {
      ValueFlow::Substitution sub;
      sub.min_sweeps = record.min_sweeps;
      if (!denormalize_env(*fn, record.env, &sub.env)) {
        match.detail = "stored environment does not map onto live function";
      } else {
        match.substitutable = true;
        match.branchless = branchless;
        out.substitutions.emplace(fn, std::move(sub));
        if (branchless) out.branchless.insert(fn);
      }
    }
    out.matches.push_back(std::move(match));
  }
  return out;
}

std::vector<ComponentHit> component_inventory(
    const LibraryRegistry& registry,
    const std::vector<const MatchResult*>& results) {
  const std::size_t nlibs = registry.libraries().size();
  std::vector<std::set<std::size_t>> matched_fis(nlibs);
  std::vector<std::set<std::size_t>> unique_fis(nlibs);
  std::vector<std::set<std::string>> names(nlibs);
  std::vector<std::set<const ir::Function*>> substituted(nlibs);

  for (const MatchResult* result : results) {
    if (result == nullptr) continue;
    for (const FunctionMatch& match : result->matches) {
      for (const LibraryRegistry::Ref& ref : match.refs) {
        matched_fis[ref.library].insert(ref.function);
        if (match.refs.size() == 1)
          unique_fis[ref.library].insert(ref.function);
        names[ref.library].insert(match.fn->name());
        if (match.substitutable) substituted[ref.library].insert(match.fn);
      }
    }
  }

  // Same-name version disambiguation: a library with shared-only evidence
  // is suppressed when a sibling version has unique evidence, and flagged
  // version-ambiguous otherwise.
  std::set<std::string> names_with_unique;
  for (std::size_t li = 0; li < nlibs; ++li) {
    if (!unique_fis[li].empty())
      names_with_unique.insert(registry.libraries()[li].name);
  }

  std::vector<ComponentHit> out;
  for (std::size_t li = 0; li < nlibs; ++li) {
    const RegistryLibrary& lib = registry.libraries()[li];
    if (matched_fis[li].empty()) continue;
    const bool has_unique = !unique_fis[li].empty();
    if (!has_unique && names_with_unique.count(lib.name) > 0) continue;
    ComponentHit hit;
    hit.name = lib.name;
    hit.version = lib.version;
    hit.risky = lib.risky;
    hit.risk_note = lib.risk_note;
    hit.matched_functions = matched_fis[li].size();
    hit.total_functions = lib.functions.size();
    hit.unique_matches = unique_fis[li].size();
    hit.substituted_functions = substituted[li].size();
    hit.version_ambiguous = !has_unique;
    hit.matched_names.assign(names[li].begin(), names[li].end());
    out.push_back(std::move(hit));
  }
  return out;
}

}  // namespace firmres::analysis::components
