// Registry construction: certify a template program's functions offline
// (docs/COMPONENTS.md).
//
// Solves the template with the value-flow engine at every sweep cap up to
// the default, records each requested function's fingerprint, its
// converged environment in normalized (position-independent) form, and the
// smallest sweep cap that reproduces that environment — the data the
// matcher needs to substitute the function soundly in any image it is
// matched in.
#pragma once

#include <string>
#include <vector>

#include "analysis/components/registry.h"
#include "ir/program.h"

namespace firmres::analysis::components {

/// Builds one registry library entry from a template program containing
/// the library's functions. `function_names` selects which local functions
/// to record; unknown or import names abort (a registry build is an
/// offline, trusted step — unlike loading, which must degrade).
RegistryLibrary build_library_from_program(
    const ir::Program& program, std::string name, std::string version,
    bool risky, std::string risk_note,
    const std::vector<std::string>& function_names);

}  // namespace firmres::analysis::components
