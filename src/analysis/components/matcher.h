// Component matcher: joins a live program against a LibraryRegistry
// (docs/COMPONENTS.md).
//
// For every local function it computes the position-independent
// fingerprint and looks it up in the registry index. A hit yields:
//
//   * an inventory contribution — which known libraries this image embeds,
//     with risk flags and version(-ambiguity) attribution, and
//   * when the function passes live structural certification, a
//     ValueFlow::Substitution that replaces its per-round solve with the
//     registry's precomputed environment.
//
// Certification is re-verified on the live function, never trusted from
// the file: the function must have no parameters and call only
// imports/unknowns (its solve is then a pure function of its op sequence,
// independent of interprocedural summaries), contain no CallInd/BranchInd,
// and not call event-registration functions. Only then is substituting the
// stored environment byte-identical to solving — the contract the
// report-determinism tests pin down.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/components/registry.h"
#include "analysis/valueflow/valueflow.h"
#include "ir/program.h"

namespace firmres::analysis::components {

struct MatchOptions {
  /// Live ValueFlow sweep cap; substitutions needing more sweeps than this
  /// are refused (the live solver would not have converged to them).
  int max_sweeps = 8;
};

/// One fingerprint hit, in function creation order.
struct FunctionMatch {
  const ir::Function* fn = nullptr;
  std::uint64_t fingerprint = 0;
  std::string registry_function;          ///< registry-side function name
  std::vector<LibraryRegistry::Ref> refs; ///< all candidate registry refs
  bool substitutable = false;
  bool branchless = false;  ///< live scan: no CBranch ops (exact P_f skip)
  /// Why the match is inventory-only (empty when substitutable).
  std::string detail;
};

/// Per-library inventory row (see component_inventory for the rules).
struct ComponentHit {
  std::string name;
  std::string version;
  bool risky = false;
  std::string risk_note;
  std::size_t matched_functions = 0;  ///< distinct registry fns matched
  std::size_t total_functions = 0;    ///< registry fns in the library
  std::size_t unique_matches = 0;     ///< matches no other library shares
  std::size_t substituted_functions = 0;
  bool version_ambiguous = false;
  std::vector<std::string> matched_names;  ///< program fn names, sorted
};

struct MatchResult {
  std::vector<FunctionMatch> matches;  ///< function creation order
  /// Substitutions for the certified subset, keyed by live function.
  std::map<const ir::Function*, ValueFlow::Substitution> substitutions;
  /// Certified-branchless matched functions (exact §IV-A P_f skip).
  std::set<const ir::Function*> branchless;
};

/// Matches every local function of `program` against the registry.
MatchResult match_program(const ir::Program& program,
                          const LibraryRegistry& registry,
                          const MatchOptions& options = {});

/// Aggregates match results (typically one per executable of an image)
/// into a deterministic per-library inventory. A library is reported when
/// it has at least one matched function and either (a) at least one match
/// unique to it, or (b) no same-name library has unique evidence — in
/// which case every such same-name candidate is reported with
/// `version_ambiguous` set. Rows follow registry order.
std::vector<ComponentHit> component_inventory(
    const LibraryRegistry& registry,
    const std::vector<const MatchResult*>& results);

}  // namespace firmres::analysis::components
