// LibraryRegistry: versioned on-disk registry of known library functions
// (docs/COMPONENTS.md).
//
// Each library entry carries a name, a version, risk flags, and one record
// per function: the position-independent fingerprint (fingerprint.h), the
// solved value-flow environment in *normalized* form (keys are dense
// first-use indices rather than live varnodes, so the same record applies
// to every image the function is linked into), and the smallest sweep cap
// that reproduces that environment. The matcher (matcher.h) joins live
// functions against the fingerprint index and turns records back into
// ValueFlow substitutions.
//
// The on-disk format mirrors the analysis cache envelope: a JSON document
// {format, version, payload, payload_hash} whose payload hash is checked
// before any field is read. Load never throws past its boundary — a
// truncated, version-skewed, or otherwise unreadable file degrades to "no
// registry" with an error message, and suspicious-but-loadable content
// (duplicate fingerprints) degrades to "no match" for the affected
// fingerprints with a warning, never an abort.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "analysis/valueflow/lattice.h"

namespace firmres::analysis::components {

/// One normalized environment binding: the varnode is identified by its
/// dense first-use index (see fingerprint.h normalization_map).
struct RegistryEnvEntry {
  std::uint8_t space = 0;   ///< ir::Space of the original varnode
  std::uint32_t index = 0;  ///< dense first-use index within the function
  std::uint32_t size = 0;
  valueflow::Value value;

  friend bool operator==(const RegistryEnvEntry&,
                         const RegistryEnvEntry&) = default;
};

struct RegistryFunction {
  std::string name;
  std::uint64_t fingerprint = 0;
  /// Normalized solved environment, sorted by (space, index, size).
  std::vector<RegistryEnvEntry> env;
  /// Smallest ValueFlow sweep cap whose local solve converges to `env`;
  /// substitution under a smaller live cap is refused.
  int min_sweeps = 1;
  /// No CBranch ops: the function contributes no predicates, so §IV-A's
  /// P_f scan can skip it with an exact 0.0 contribution.
  bool branchless = false;
};

struct RegistryLibrary {
  std::string name;
  std::string version;
  bool risky = false;
  std::string risk_note;  ///< why the component is flagged (advisory text)
  std::vector<RegistryFunction> functions;
};

class LibraryRegistry {
 public:
  /// Index entry: functions()[function] of libraries()[library].
  struct Ref {
    std::size_t library = 0;
    std::size_t function = 0;
  };

  LibraryRegistry() = default;

  /// Appends a library and indexes its fingerprints. Duplicate fingerprints
  /// *within* one library are ambiguous by construction and are dropped
  /// from the index (recorded in warnings()); the same fingerprint across
  /// libraries is legitimate shared code and keeps every ref.
  void add_library(RegistryLibrary library);

  const std::vector<RegistryLibrary>& libraries() const { return libraries_; }
  const RegistryFunction& function(const Ref& ref) const {
    return libraries_[ref.library].functions[ref.function];
  }

  /// All index refs for a fingerprint (insertion order), or nullptr.
  const std::vector<Ref>* lookup(std::uint64_t fingerprint) const;

  /// Non-fatal degradations recorded while building/loading (e.g. dropped
  /// duplicate fingerprints). Callers surface these through the event log.
  const std::vector<std::string>& warnings() const { return warnings_; }

  std::size_t total_functions() const;

  /// Serializes to the versioned envelope and writes atomically
  /// (temp + rename). Returns an error message, or empty on success.
  std::string save(const std::string& path) const;

  /// Loads a registry file. On any failure — missing file, malformed JSON,
  /// wrong format marker, version skew, payload-hash mismatch, shape
  /// errors — returns nullopt and sets `*error`; never throws, so a bad
  /// registry can never abort a device analysis.
  static std::optional<LibraryRegistry> load(const std::string& path,
                                             std::string* error);

 private:
  std::vector<RegistryLibrary> libraries_;
  std::map<std::uint64_t, std::vector<Ref>> index_;
  std::vector<std::string> warnings_;
};

}  // namespace firmres::analysis::components
