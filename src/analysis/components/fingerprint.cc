#include "analysis/components/fingerprint.h"

#include <string_view>

#include "ir/library.h"
#include "support/hash.h"

namespace firmres::analysis::components {
namespace {

// Domain-separation salt for fingerprints ("cmpfpr01"); bump if the shape
// of the hashed data ever changes, so stale registries cannot match.
constexpr std::uint64_t kFingerprintSalt = 0x636d70667072'3031ULL;

bool is_tracked(const ir::VarNode& v) {
  return v.space == ir::Space::Register || v.space == ir::Space::Unique ||
         v.space == ir::Space::Stack;
}

void assign_index(std::map<ir::VarNode, std::uint32_t>& index,
                  const ir::VarNode& v) {
  if (!is_tracked(v)) return;
  index.emplace(v, static_cast<std::uint32_t>(index.size()));
}

// Markers keep operand classes from aliasing each other in the stream.
enum : std::uint8_t {
  kMarkConst = 1,
  kMarkRamString = 2,
  kMarkRamOpaque = 3,
  kMarkTracked = 4,
  kMarkCalleeImport = 5,
  kMarkCalleeLocal = 6,
  kMarkNoOutput = 7,
  kMarkOutput = 8,
};

void feed_varnode(support::Hasher& h, const ir::Program& program,
                  const std::map<ir::VarNode, std::uint32_t>& index,
                  const ir::VarNode& v) {
  switch (v.space) {
    case ir::Space::Const:
      h.u8(kMarkConst).u64(v.offset);
      break;
    case ir::Space::Ram: {
      // Anchor on the pointed-at string content, never the raw offset:
      // interning order differs between images.
      const std::optional<std::string_view> s =
          program.data().string_at(v.offset);
      if (s.has_value()) {
        h.u8(kMarkRamString).str(*s);
      } else {
        h.u8(kMarkRamOpaque);
      }
      break;
    }
    default:
      h.u8(kMarkTracked).u64(index.at(v));
      break;
  }
  h.u64(v.size);
}

}  // namespace

std::map<ir::VarNode, std::uint32_t> normalization_map(
    const ir::Function& fn) {
  std::map<ir::VarNode, std::uint32_t> index;
  for (const ir::VarNode& p : fn.params()) assign_index(index, p);
  fn.for_each_op([&](const ir::PcodeOp& op) {
    for (const ir::VarNode& in : op.inputs) assign_index(index, in);
    if (op.output.has_value()) assign_index(index, *op.output);
  });
  return index;
}

std::uint64_t fingerprint_function(const ir::Program& program,
                                   const ir::Function& fn) {
  const std::map<ir::VarNode, std::uint32_t> index = normalization_map(fn);
  support::Hasher h(kFingerprintSalt);

  h.u64(fn.params().size());
  for (const ir::VarNode& p : fn.params()) {
    h.u8(static_cast<std::uint8_t>(p.space)).u64(p.size);
  }

  const std::vector<ir::BasicBlock>& blocks = fn.blocks();
  h.u64(blocks.size());
  for (const ir::BasicBlock& block : blocks) {
    h.u64(block.successors.size());
    for (const int succ : block.successors)
      h.u64(static_cast<std::uint64_t>(succ));
    h.u64(block.ops.size());
    for (const ir::PcodeOp& op : block.ops) {
      h.u8(static_cast<std::uint8_t>(op.opcode));
      if (op.opcode == ir::OpCode::Call && !op.callee.empty()) {
        const ir::Function* callee = program.function(op.callee);
        if (callee == nullptr || callee->is_import()) {
          // Import anchor: name plus modelled kind — the "callee-kind
          // skeleton" that distinguishes e.g. a send wrapper from a
          // string helper even under renamed thunks.
          h.u8(kMarkCalleeImport).str(op.callee);
          const ir::LibFunction* lib =
              ir::LibraryModel::instance().find(op.callee);
          h.u8(lib != nullptr ? static_cast<std::uint8_t>(lib->kind) : 0xff);
        } else {
          // Local callee: shape only — intra-library call structure is
          // captured by the callee's own fingerprint, and local names
          // need not survive stripping.
          h.u8(kMarkCalleeLocal);
        }
      }
      h.u64(op.inputs.size());
      for (const ir::VarNode& in : op.inputs)
        feed_varnode(h, program, index, in);
      if (op.output.has_value()) {
        h.u8(kMarkOutput);
        feed_varnode(h, program, index, *op.output);
      } else {
        h.u8(kMarkNoOutput);
      }
    }
  }
  return h.digest();
}

}  // namespace firmres::analysis::components
