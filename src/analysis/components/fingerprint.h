// Position-independent function fingerprinting (docs/COMPONENTS.md).
//
// Hashes an ir::Function into an opcode-shape signature that is stable
// across images: the same library function, linked into two different
// programs at different addresses and with its strings interned at
// different data-segment offsets, hashes to the same 64-bit value. The
// fingerprint covers the opcode sequence, the block/successor shape, the
// callee skeleton (import names + LibraryModel kinds; local calls reduced
// to a marker), parameter arity, and per-operand anchors: Const operands
// by raw value, Ram operands by the *string content* they point at, and
// Register/Unique/Stack operands by a dense first-use index within the
// function. Op addresses and raw Ram offsets are deliberately excluded —
// they are position-dependent.
//
// The same first-use normalization is exported (`normalization_map`) so
// the registry can store solved value-flow environments keyed by dense
// index and the matcher can denormalize them back onto a live function.
#pragma once

#include <cstdint>
#include <map>

#include "ir/function.h"
#include "ir/program.h"
#include "ir/varnode.h"

namespace firmres::analysis::components {

/// Position-independent opcode-shape signature of `fn` within `program`
/// (the program supplies string content for Ram operands).
std::uint64_t fingerprint_function(const ir::Program& program,
                                   const ir::Function& fn);

/// Dense first-use index for every tracked (Register/Unique/Stack) varnode
/// of `fn`: parameters first, then operands/outputs in op layout order.
/// Deterministic for a given function body, and — because fingerprinting
/// hashes the same traversal — identical for any two functions that share
/// a fingerprint.
std::map<ir::VarNode, std::uint32_t> normalization_map(const ir::Function& fn);

}  // namespace firmres::analysis::components
