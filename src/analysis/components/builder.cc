#include "analysis/components/builder.h"

#include <memory>

#include "analysis/components/fingerprint.h"
#include "analysis/valueflow/valueflow.h"
#include "support/error.h"

namespace firmres::analysis::components {

RegistryLibrary build_library_from_program(
    const ir::Program& program, std::string name, std::string version,
    bool risky, std::string risk_note,
    const std::vector<std::string>& function_names) {
  // One solve per sweep cap: solves[c-1] capped at c sweeps. The last one
  // uses the default cap and supplies the converged environments; the
  // earlier ones only serve to find each function's min_sweeps.
  const ValueFlow::Options defaults;
  std::vector<std::unique_ptr<ValueFlow>> solves;
  for (int cap = 1; cap <= defaults.max_sweeps; ++cap) {
    ValueFlow::Options options;
    options.max_sweeps = cap;
    solves.push_back(
        std::make_unique<ValueFlow>(program, nullptr, options));
  }
  const ValueFlow& converged = *solves.back();

  RegistryLibrary library;
  library.name = std::move(name);
  library.version = std::move(version);
  library.risky = risky;
  library.risk_note = std::move(risk_note);

  for (const std::string& fn_name : function_names) {
    const ir::Function* fn = program.function(fn_name);
    FIRMRES_CHECK_MSG(fn != nullptr && !fn->is_import(),
                      "registry build: no local function named " + fn_name);
    const std::map<ir::VarNode, valueflow::Value>* env =
        converged.solved_env(fn);
    FIRMRES_CHECK_MSG(env != nullptr,
                      "registry build: no solved env for " + fn_name);

    RegistryFunction record;
    record.name = fn_name;
    record.fingerprint = fingerprint_function(program, *fn);

    record.min_sweeps = defaults.max_sweeps;
    for (int cap = 1; cap < defaults.max_sweeps; ++cap) {
      const std::map<ir::VarNode, valueflow::Value>* capped =
          solves[cap - 1]->solved_env(fn);
      if (capped != nullptr && *capped == *env) {
        record.min_sweeps = cap;
        break;
      }
    }

    bool branchless = true;
    fn->for_each_op([&](const ir::PcodeOp& op) {
      if (op.opcode == ir::OpCode::CBranch) branchless = false;
    });
    record.branchless = branchless;

    const std::map<ir::VarNode, std::uint32_t> index =
        normalization_map(*fn);
    for (const auto& [var, value] : *env) {
      const auto it = index.find(var);
      FIRMRES_CHECK_MSG(it != index.end(),
                        "registry build: env varnode not in " + fn_name);
      record.env.push_back(RegistryEnvEntry{
          .space = static_cast<std::uint8_t>(var.space),
          .index = it->second,
          .size = static_cast<std::uint32_t>(var.size),
          .value = value});
    }
    library.functions.push_back(std::move(record));
  }
  return library;
}

}  // namespace firmres::analysis::components
