#include "analysis/components/registry.h"

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "support/hash.h"
#include "support/json.h"
#include "support/strings.h"

namespace firmres::analysis::components {
namespace {

namespace fs = std::filesystem;
using support::Json;
using support::JsonArray;
using support::JsonObject;
using valueflow::Value;

constexpr const char* kRegistryFormat = "firmres-registry";
constexpr int kRegistryVersion = 1;

std::string hex_u64(std::uint64_t v) {
  return support::format("0x%016llx", static_cast<unsigned long long>(v));
}

std::uint64_t parse_u64(const std::string& s) {
  if (s.size() < 3 || s[0] != '0' || s[1] != 'x')
    throw support::ParseError("registry payload: bad u64 literal: " + s);
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(s.c_str() + 2, &end, 16);
  if (end == nullptr || *end != '\0')
    throw support::ParseError("registry payload: bad u64 literal: " + s);
  return v;
}

// Checked accessors: the payload hash already rejected corruption, so a
// shape mismatch means a foreign or hand-edited file — ParseError, turned
// into a load error at the boundary.
const Json& req(const Json& obj, const char* key) {
  const Json* v = obj.find(key);
  if (v == nullptr)
    throw support::ParseError(std::string("registry payload: missing key ") +
                              key);
  return *v;
}

std::string req_str(const Json& obj, const char* key) {
  const Json& v = req(obj, key);
  if (!v.is_string())
    throw support::ParseError(std::string("registry payload: ") + key +
                              " is not a string");
  return v.as_string();
}

std::uint64_t req_u64(const Json& obj, const char* key) {
  return parse_u64(req_str(obj, key));
}

int req_int(const Json& obj, const char* key) {
  const Json& v = req(obj, key);
  if (!v.is_number())
    throw support::ParseError(std::string("registry payload: ") + key +
                              " is not a number");
  return static_cast<int>(v.as_number());
}

bool req_bool(const Json& obj, const char* key) {
  const Json& v = req(obj, key);
  if (!v.is_bool())
    throw support::ParseError(std::string("registry payload: ") + key +
                              " is not a bool");
  return v.as_bool();
}

const JsonArray& req_array(const Json& obj, const char* key) {
  const Json& v = req(obj, key);
  if (!v.is_array())
    throw support::ParseError(std::string("registry payload: ") + key +
                              " is not an array");
  return v.as_array();
}

Json value_to_json(const Value& v) {
  JsonObject o;
  switch (v.kind()) {
    case Value::Kind::Top:
      o.emplace_back("kind", Json("top"));
      break;
    case Value::Kind::Bottom:
      o.emplace_back("kind", Json("bottom"));
      break;
    case Value::Kind::Const:
      o.emplace_back("kind", Json("const"));
      o.emplace_back("value", Json(hex_u64(v.const_value())));
      break;
    case Value::Kind::Str:
      o.emplace_back("kind", Json("str"));
      o.emplace_back("value", Json(v.str_value()));
      break;
  }
  return Json(std::move(o));
}

Value value_from_json(const Json& j) {
  const std::string kind = req_str(j, "kind");
  if (kind == "top") return Value::top();
  if (kind == "bottom") return Value::bottom();
  if (kind == "const") return Value::constant(req_u64(j, "value"));
  if (kind == "str") return Value::str(req_str(j, "value"));
  throw support::ParseError("registry payload: unknown value kind: " + kind);
}

Json function_to_json(const RegistryFunction& fn) {
  JsonArray env;
  for (const RegistryEnvEntry& e : fn.env) {
    env.push_back(Json(JsonObject{
        {"space", Json(static_cast<int>(e.space))},
        {"index", Json(static_cast<int>(e.index))},
        {"size", Json(static_cast<int>(e.size))},
        {"value", value_to_json(e.value)},
    }));
  }
  return Json(JsonObject{
      {"name", Json(fn.name)},
      {"fingerprint", Json(hex_u64(fn.fingerprint))},
      {"min_sweeps", Json(fn.min_sweeps)},
      {"branchless", Json(fn.branchless)},
      {"env", Json(std::move(env))},
  });
}

RegistryFunction function_from_json(const Json& j) {
  RegistryFunction fn;
  fn.name = req_str(j, "name");
  fn.fingerprint = req_u64(j, "fingerprint");
  fn.min_sweeps = req_int(j, "min_sweeps");
  fn.branchless = req_bool(j, "branchless");
  for (const Json& ej : req_array(j, "env")) {
    RegistryEnvEntry e;
    e.space = static_cast<std::uint8_t>(req_int(ej, "space"));
    e.index = static_cast<std::uint32_t>(req_int(ej, "index"));
    e.size = static_cast<std::uint32_t>(req_int(ej, "size"));
    e.value = value_from_json(req(ej, "value"));
    fn.env.push_back(std::move(e));
  }
  return fn;
}

Json library_to_json(const RegistryLibrary& lib) {
  JsonArray fns;
  for (const RegistryFunction& fn : lib.functions)
    fns.push_back(function_to_json(fn));
  return Json(JsonObject{
      {"name", Json(lib.name)},
      {"version", Json(lib.version)},
      {"risky", Json(lib.risky)},
      {"risk_note", Json(lib.risk_note)},
      {"functions", Json(std::move(fns))},
  });
}

RegistryLibrary library_from_json(const Json& j) {
  RegistryLibrary lib;
  lib.name = req_str(j, "name");
  lib.version = req_str(j, "version");
  lib.risky = req_bool(j, "risky");
  lib.risk_note = req_str(j, "risk_note");
  for (const Json& fj : req_array(j, "functions"))
    lib.functions.push_back(function_from_json(fj));
  return lib;
}

}  // namespace

void LibraryRegistry::add_library(RegistryLibrary library) {
  const std::size_t li = libraries_.size();

  // Intra-library duplicate fingerprints are ambiguous by construction
  // (two summaries claim the same shape): drop the fingerprint from the
  // index so it degrades to "no match", and record why.
  std::map<std::uint64_t, std::size_t> seen;
  std::vector<std::uint64_t> dropped;
  for (std::size_t fi = 0; fi < library.functions.size(); ++fi) {
    const std::uint64_t fp = library.functions[fi].fingerprint;
    if (seen.count(fp) > 0) {
      if (dropped.empty() || dropped.back() != fp) dropped.push_back(fp);
      continue;
    }
    seen.emplace(fp, fi);
  }
  for (const std::uint64_t fp : dropped) {
    seen.erase(fp);
    warnings_.push_back(support::format(
        "duplicate fingerprint %s within library %s %s: dropped from index",
        hex_u64(fp).c_str(), library.name.c_str(), library.version.c_str()));
  }

  for (std::size_t fi = 0; fi < library.functions.size(); ++fi) {
    const std::uint64_t fp = library.functions[fi].fingerprint;
    const auto it = seen.find(fp);
    if (it == seen.end() || it->second != fi) continue;
    index_[fp].push_back(Ref{.library = li, .function = fi});
  }
  libraries_.push_back(std::move(library));
}

const std::vector<LibraryRegistry::Ref>* LibraryRegistry::lookup(
    std::uint64_t fingerprint) const {
  const auto it = index_.find(fingerprint);
  return it == index_.end() ? nullptr : &it->second;
}

std::size_t LibraryRegistry::total_functions() const {
  std::size_t n = 0;
  for (const RegistryLibrary& lib : libraries_) n += lib.functions.size();
  return n;
}

std::string LibraryRegistry::save(const std::string& path) const {
  JsonArray libs;
  for (const RegistryLibrary& lib : libraries_)
    libs.push_back(library_to_json(lib));
  const Json payload(JsonObject{{"libraries", Json(std::move(libs))}});
  const Json doc(JsonObject{
      {"format", Json(kRegistryFormat)},
      {"version", Json(kRegistryVersion)},
      {"payload", payload},
      {"payload_hash", Json(hex_u64(support::fnv1a64(payload.dump(false))))},
  });
  const std::string text = doc.dump(true);

  static std::atomic<std::uint64_t> temp_seq{0};
  const fs::path target(path);
  std::error_code ec;
  if (target.has_parent_path()) {
    fs::create_directories(target.parent_path(), ec);
  }
  const fs::path tmp =
      target.parent_path() /
      support::format(".%s.tmp-%llu", target.filename().string().c_str(),
                      static_cast<unsigned long long>(temp_seq++));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.is_open())
      return "cannot open registry file for writing: " + tmp.string();
    out << text;
    if (!out.good()) return "short write to registry file: " + tmp.string();
  }
  fs::rename(tmp, target, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return "cannot rename registry file into place: " + path;
  }
  return {};
}

std::optional<LibraryRegistry> LibraryRegistry::load(const std::string& path,
                                                     std::string* error) {
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = "registry " + path + ": " + why;
    return std::nullopt;
  };

  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return fail("cannot open file");
  std::ostringstream buf;
  buf << in.rdbuf();

  const std::optional<Json> doc = Json::try_parse(buf.str());
  if (!doc.has_value()) return fail("malformed JSON (truncated?)");
  const Json* format = doc->find("format");
  if (format == nullptr || !format->is_string() ||
      format->as_string() != kRegistryFormat)
    return fail("not a firmres registry file");
  const Json* version = doc->find("version");
  if (version == nullptr || !version->is_number())
    return fail("missing version");
  if (static_cast<int>(version->as_number()) != kRegistryVersion)
    return fail(support::format(
        "version skew: file has %d, this build reads %d",
        static_cast<int>(version->as_number()), kRegistryVersion));
  const Json* payload = doc->find("payload");
  const Json* payload_hash = doc->find("payload_hash");
  if (payload == nullptr || payload_hash == nullptr ||
      !payload_hash->is_string())
    return fail("missing payload");
  if (payload_hash->as_string() !=
      hex_u64(support::fnv1a64(payload->dump(false))))
    return fail("payload hash mismatch (corrupt or truncated)");

  try {
    LibraryRegistry registry;
    for (const Json& lj : req_array(*payload, "libraries"))
      registry.add_library(library_from_json(lj));
    return registry;
  } catch (const support::ParseError& e) {
    return fail(e.what());
  }
}

}  // namespace firmres::analysis::components
