#include "analysis/call_graph.h"

#include <algorithm>
#include <deque>
#include <set>

#include "analysis/valueflow/valueflow.h"
#include "ir/library.h"

namespace firmres::analysis {

CallGraph::CallGraph(const ir::Program& program) : program_(program) {
  build(nullptr);
}

CallGraph::CallGraph(const ir::Program& program, const ValueFlow& valueflow)
    : program_(program) {
  build(&valueflow);
}

void CallGraph::build(const ValueFlow* valueflow) {
  const auto& lib = ir::LibraryModel::instance();

  for (const ir::Function* fn : program_.functions()) by_entry_[fn->entry_address()] = fn;

  for (const ir::Function* fn : program_.local_functions()) {
    std::set<const ir::Function*> seen_callees;
    for (const ir::BasicBlock& b : fn->blocks()) {
      for (const ir::PcodeOp& op : b.ops) {
        if (op.opcode == ir::OpCode::CallInd) {
          // Surfaced whether or not the target resolves. Without value
          // flow, only a constant-space pointer operand resolves.
          const ir::Function* target = nullptr;
          if (valueflow != nullptr) {
            target = valueflow->resolved_target(&op);
          } else if (!op.inputs.empty() && op.inputs[0].is_constant()) {
            const auto it = by_entry_.find(op.inputs[0].offset);
            if (it != by_entry_.end() && !it->second->is_import())
              target = it->second;
          }
          indirect_callsites_.push_back(
              IndirectCallSite{.caller = fn, .op = &op, .target = target});
          if (target != nullptr) {
            ++indirect_resolved_;
            if (valueflow != nullptr) {
              // Devirtualized edge: undirected adjacency (distance/path)
              // and the resolved-callsite index only — direct-call views
              // (`callers`/`callees`) are left untouched so §IV-A's
              // asynchrony test still sees event handlers as uncalled.
              devirt_sites_by_callee_[target->name()].push_back(
                  CallSite{.caller = fn, .op = &op, .arg_offset = 1});
              undirected_[fn].push_back(target);
              undirected_[target].push_back(fn);
            }
          }
          continue;
        }
        if (op.opcode != ir::OpCode::Call) continue;
        const CallSite site{.caller = fn, .op = &op, .arg_offset = 0};
        sites_by_callee_[std::string(op.callee)].push_back(site);
        sites_by_caller_[fn].push_back(site);

        const ir::Function* target = program_.function_by_id(op.callee_fn);
        if (target != nullptr && !target->is_import() &&
            seen_callees.insert(target).second) {
          callees_[fn].push_back(target);
          callers_[target].push_back(fn);
        }

        // Event-callback registration: a const function-pointer argument to
        // an EventReg library call marks the target as implicitly invoked.
        const ir::LibFunction* libfn = op.lib();
        if (libfn != nullptr && libfn->kind == ir::LibKind::EventReg &&
            libfn->callback_arg >= 0 &&
            static_cast<std::size_t>(libfn->callback_arg) < op.inputs.size()) {
          const ir::VarNode& cb = op.inputs[static_cast<std::size_t>(libfn->callback_arg)];
          if (cb.is_constant()) {
            const auto it = by_entry_.find(cb.offset);
            if (it != by_entry_.end()) event_registered_[it->second] = true;
          }
        }
      }
    }
  }

  // Callbacks whose registration operand only folds under value flow.
  if (valueflow != nullptr)
    for (const ir::Function* cb : valueflow->folded_event_callbacks())
      event_registered_[cb] = true;

  // Undirected adjacency for distance/path queries.
  for (const auto& [fn, outs] : callees_) {
    for (const ir::Function* out : outs) {
      undirected_[fn].push_back(out);
      undirected_[out].push_back(fn);
    }
  }
  for (auto& [fn, adj] : undirected_) {
    (void)fn;
    std::sort(adj.begin(), adj.end(),
              [](const ir::Function* a, const ir::Function* b) {
                return a->entry_address() < b->entry_address();
              });
    adj.erase(std::unique(adj.begin(), adj.end()), adj.end());
  }

  // Merge direct + devirtualized callsites once; resolved_callsites_of is
  // queried per parameter leaf on the taint hot path.
  resolved_sites_by_callee_ = sites_by_callee_;
  for (const auto& [name, sites] : devirt_sites_by_callee_) {
    auto& merged = resolved_sites_by_callee_[name];
    merged.insert(merged.end(), sites.begin(), sites.end());
  }
}

const std::vector<const ir::Function*>& CallGraph::callers(
    const ir::Function* fn) const {
  const auto it = callers_.find(fn);
  return it == callers_.end() ? empty_ : it->second;
}

const std::vector<const ir::Function*>& CallGraph::callees(
    const ir::Function* fn) const {
  const auto it = callees_.find(fn);
  return it == callees_.end() ? empty_ : it->second;
}

const std::vector<CallSite>& CallGraph::callsites_of(
    std::string_view callee_name) const {
  const auto it = sites_by_callee_.find(callee_name);
  return it == sites_by_callee_.end() ? empty_sites_ : it->second;
}

const ir::Function* CallGraph::indirect_target(const ir::PcodeOp* op) const {
  for (const IndirectCallSite& site : indirect_callsites_)
    if (site.op == op) return site.target;
  return nullptr;
}

const std::vector<CallSite>& CallGraph::resolved_callsites_of(
    std::string_view callee_name) const {
  const auto it = resolved_sites_by_callee_.find(callee_name);
  return it == resolved_sites_by_callee_.end() ? empty_sites_ : it->second;
}

const std::vector<CallSite>& CallGraph::callsites_in(
    const ir::Function* fn) const {
  const auto it = sites_by_caller_.find(fn);
  return it == sites_by_caller_.end() ? empty_sites_ : it->second;
}

std::vector<const ir::Function*> CallGraph::path(const ir::Function* a,
                                                 const ir::Function* b) const {
  if (a == b) return {a};
  std::map<const ir::Function*, const ir::Function*> parent;
  std::deque<const ir::Function*> queue{a};
  parent[a] = nullptr;
  while (!queue.empty()) {
    const ir::Function* cur = queue.front();
    queue.pop_front();
    const auto it = undirected_.find(cur);
    if (it == undirected_.end()) continue;
    for (const ir::Function* next : it->second) {
      if (parent.contains(next)) continue;
      parent[next] = cur;
      if (next == b) {
        std::vector<const ir::Function*> out;
        for (const ir::Function* f = b; f != nullptr; f = parent[f])
          out.push_back(f);
        std::reverse(out.begin(), out.end());
        return out;
      }
      queue.push_back(next);
    }
  }
  return {};
}

int CallGraph::distance(const ir::Function* a, const ir::Function* b) const {
  const auto p = path(a, b);
  return p.empty() ? -1 : static_cast<int>(p.size()) - 1;
}

bool CallGraph::has_direct_callers(const ir::Function* fn) const {
  return !callers(fn).empty();
}

bool CallGraph::is_event_registered(const ir::Function* fn) const {
  const auto it = event_registered_.find(fn);
  return it != event_registered_.end() && it->second;
}

const ir::Function* CallGraph::function_at(std::uint64_t entry_address) const {
  const auto it = by_entry_.find(entry_address);
  return it == by_entry_.end() ? nullptr : it->second;
}

}  // namespace firmres::analysis
