// Message Field Tree (MFT), the central data structure of FIRMRES (§IV-C).
//
// "It takes the taint sources (e.g., the message arguments) as the root
// nodes and the taint sinks (e.g., the sources of message fields) as the
// leaf nodes. The paths from the leaf nodes to the root node represent
// message construction."
//
// One Mft is built per message-delivery callsite; it has one root per
// message-bearing argument (URL + body, topic + payload, …). Interior nodes
// are the construction ops (sprintf/strcat/cJSON_Add*/COPY); leaves are the
// single-information-source values of §IV-B.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ir/program.h"

namespace firmres::core {

enum class MftNodeKind {
  Root,        ///< a message argument at the delivery callsite
  Op,          ///< construction step (string op, JSON op, copy, arithmetic)
  LeafConst,   ///< numeric constant (incl. disassembly-noise constants)
  LeafString,  ///< string constant from the data segment
  LeafSource,  ///< field-source library call (NVRAM/config/env/frontend/…)
  LeafOpaque,  ///< result of a call with no modelled inflow (time, rand, …)
  LeafParam,   ///< unresolved function parameter (no callers found)
  LeafMemory,  ///< Load whose reaching stores points-to could not resolve
};

const char* mft_node_kind_name(MftNodeKind kind);

/// Per-leaf record of how the §IV-B backward taint walk reached its sink:
/// the functions crossed from the delivery callsite to the leaf, how many
/// of those crossings went through devirtualized indirect calls or caller
/// ascents, and why the walk terminated there. Keyed by MftNode::leaf_id,
/// which survives simplify()/invert(), so the provenance stays valid on
/// the reconstructor's transformed tree (docs/PROVENANCE.md).
struct TaintProvenance {
  int leaf_id = -1;
  /// Function chain from the delivery function to the leaf's function, in
  /// descent order (duplicates possible on re-entrant paths).
  std::vector<std::string> visited_functions;
  /// Devirtualized CALLIND descents on the path (value-flow resolved).
  int devirt_crossings = 0;
  /// Parameter ascents through resolved callsites on the path.
  int callsite_crossings = 0;
  /// Load→reaching-Store hops on the path, resolved through the points-to
  /// memory def-use index (docs/POINTSTO.md).
  int memory_crossings = 0;
  /// Recursion depth at the leaf.
  int depth = 0;
  /// Why the walk stopped: "numeric-constant", "string-constant",
  /// "field-source", "opaque-call", "unresolved-param", "undefined-local",
  /// "memory-unresolved".
  std::string termination;
};

struct MftNode {
  MftNodeKind kind = MftNodeKind::Op;
  /// Function containing `op` (symbol scope for slice rendering).
  const ir::Function* fn = nullptr;
  /// Defining op (the delivery call for roots; the producing op otherwise).
  const ir::PcodeOp* op = nullptr;
  /// The varnode this node stands for.
  ir::VarNode var{};
  /// Which input slot of the *parent's* op this node expands
  /// (distinguishes a sprintf format string from its value arguments and a
  /// cJSON key from its value). -1 for roots.
  int src_index = -1;
  /// Leaf payload: string-constant content, field-source key, or callee.
  std::string detail;
  /// For LeafSource: the library function consulted (nvram_get, …).
  std::string source_callee;
  /// Stable id of a leaf within its Mft, assigned at construction. Survives
  /// simplify() copies, letting the reconstructor correlate ordered leaves
  /// of the inverted-simplified tree with slices computed on the original.
  int leaf_id = -1;

  std::vector<std::unique_ptr<MftNode>> children;

  bool is_leaf() const { return kind != MftNodeKind::Root && kind != MftNodeKind::Op; }
};

struct Mft {
  const ir::Program* program = nullptr;
  const ir::Function* delivery_fn = nullptr;
  const ir::PcodeOp* delivery_op = nullptr;
  std::string delivery_callee;
  /// One root per message-bearing argument, in argument order.
  std::vector<std::unique_ptr<MftNode>> roots;
  /// Taint-walk provenance, one record per leaf, in leaf_id order.
  std::vector<TaintProvenance> provenance;

  /// Provenance record for a leaf_id; nullptr when unknown.
  const TaintProvenance* provenance_of(int leaf_id) const;

  std::size_t node_count() const;
  std::size_t leaf_count() const;

  /// All leaves in depth-first order across the roots (message order after
  /// the inversion step has been applied to children ordering).
  std::vector<const MftNode*> leaves() const;

  /// Root-to-leaf path (inclusive) for a leaf obtained from leaves().
  /// Returns empty if the leaf is not in this tree.
  std::vector<const MftNode*> path_to(const MftNode* leaf) const;

  /// §IV-D path hash: stable identity of a leaf's construction path, used
  /// for field grouping.
  std::uint64_t path_hash(const MftNode* leaf) const;
};

/// §IV-D "Simplifying the MFT": keep only branching nodes and leaves —
/// interior chains of single-child formatting/encoding nodes are collapsed.
/// Returns a structural copy.
std::unique_ptr<MftNode> simplify(const MftNode& root);

/// §IV-D "Inverting the simplified MFT": reverse child order at every node
/// so that backward-discovery order becomes message concatenation order.
void invert(MftNode& node);

/// Debug rendering (indented tree).
std::string render_mft(const Mft& mft);

}  // namespace firmres::core
