#include "core/sdk_registry.h"

#include <memory>

#include "analysis/components/builder.h"
#include "firmware/sdk_library.h"

namespace firmres::core {

analysis::components::LibraryRegistry build_sdk_registry() {
  analysis::components::LibraryRegistry registry;
  for (const fw::SdkLibraryDef& def : fw::sdk_library_defs()) {
    const std::unique_ptr<ir::Program> program =
        fw::build_sdk_template_program(def);
    registry.add_library(analysis::components::build_library_from_program(
        *program, def.name, def.version, def.risky, def.risk_note,
        def.function_names));
  }
  return registry;
}

}  // namespace firmres::core
