// Parallel corpus analysis engine.
//
// FIRMRES's evaluation (§V) runs the pipeline over a 23-device corpus;
// per-image analysis is embarrassingly parallel. CorpusRunner fans
// Pipeline::analyze out across firmware images on a work-stealing
// ThreadPool — and, within one image, across device-cloud programs in
// Phase 2 — then aggregates results in ascending device-id order
// regardless of completion order. The aggregated output is therefore
// bit-identical for jobs=1 and jobs=N (per-device timings excepted; report
// serialization can omit them, see report.h).
//
// A device whose task throws (corrupt image, analysis bug) is recorded as a
// DeviceFailure instead of aborting the run; the remaining images complete.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "support/thread_pool.h"

namespace firmres::core {

/// One unit of corpus work. `run` may throw; it receives the shared pool
/// (nullptr when the run is sequential) for intra-image parallelism.
struct CorpusTask {
  int device_id = 0;
  std::function<DeviceAnalysis(support::ThreadPool*)> run;
};

/// A device whose analysis threw instead of completing.
struct DeviceFailure {
  int device_id = 0;
  std::string error;
  /// How many times the task was attempted (2 when the retry also failed).
  int attempts = 1;
};

struct CorpusResult {
  /// Completed analyses, ascending device id (ties keep submission order).
  std::vector<DeviceAnalysis> analyses;
  /// Failed devices, same ordering.
  std::vector<DeviceFailure> failures;
  /// Per-phase sums over `analyses`, accumulated in device-id order (the
  /// floating-point addition order is fixed, so the sums are deterministic
  /// given deterministic inputs).
  PhaseTimings aggregate;
  /// End-to-end wall clock of the run.
  double wall_s = 0.0;
  /// Total CPU time the analyses consumed (sum of per-device cpu_total_s).
  double cpu_s = 0.0;
  /// Observed parallel speedup: CPU seconds delivered per wall second.
  double speedup() const { return wall_s > 0.0 ? cpu_s / wall_s : 0.0; }
};

class CorpusRunner {
 public:
  struct Options {
    /// Worker threads; 1 runs inline on the calling thread (the exact
    /// sequential path), 0 means ThreadPool::default_parallelism().
    int jobs = 1;
    /// Also fan Phase 2 out across device-cloud programs within one image.
    bool parallel_programs = true;
    /// Re-run a failed device task once, sequentially, after the fan-out
    /// completes — resource-pressure failures under parallelism get a
    /// second chance while deterministic failures fail again and surface
    /// as one DeviceFailure with attempts = 2. A failed attempt's timings
    /// and per-device metrics are discarded wholesale: each device
    /// contributes exactly one attempt (the surviving one) to
    /// CorpusResult::aggregate / cpu_s, never the sum of both.
    bool retry_failed = true;
    /// Completion callback (the CLI's --progress), invoked once per task
    /// attempt from the thread that ran it, right after the attempt
    /// finishes. `ok` is false for a throwing attempt (timings are then
    /// default-constructed). Must be thread-safe under jobs > 1; purely
    /// observational — results and aggregation are unaffected.
    std::function<void(int device_id, bool ok, const PhaseTimings& timings)>
        on_device_done;
  };

  /// `pipeline` must outlive the runner.
  explicit CorpusRunner(const Pipeline& pipeline)
      : CorpusRunner(pipeline, Options{}) {}
  CorpusRunner(const Pipeline& pipeline, Options options)
      : pipeline_(pipeline), options_(options) {}

  /// Analyze every image. Images are not copied; they must outlive the call.
  CorpusResult run(const std::vector<fw::FirmwareImage>& images) const;
  CorpusResult run(const std::vector<const fw::FirmwareImage*>& images) const;

  /// Generic driver: run arbitrary per-device tasks (e.g. load-then-analyze
  /// closures whose load may throw).
  CorpusResult run_tasks(const std::vector<CorpusTask>& tasks) const;

  const Options& options() const { return options_; }

 private:
  const Pipeline& pipeline_;
  Options options_;
};

}  // namespace firmres::core
