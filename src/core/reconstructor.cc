#include "core/reconstructor.h"

#include <algorithm>
#include <map>

#include "ir/library.h"
#include "support/strings.h"

namespace firmres::core {

const char* field_value_source_name(FieldValueSource s) {
  switch (s) {
    case FieldValueSource::Nvram: return "nvram";
    case FieldValueSource::Config: return "config";
    case FieldValueSource::Env: return "env";
    case FieldValueSource::Frontend: return "frontend";
    case FieldValueSource::DevInfo: return "devinfo";
    case FieldValueSource::StringConst: return "string-const";
    case FieldValueSource::NumConst: return "num-const";
    case FieldValueSource::FileRead: return "file";
    case FieldValueSource::Derived: return "derived";
    case FieldValueSource::Opaque: return "opaque";
  }
  return "?";
}

bool ReconstructedMessage::has_primitive(fw::Primitive p) const {
  for (const ReconstructedField& f : fields)
    if (f.semantics == p) return true;
  return false;
}

namespace {

FieldValueSource source_of_leaf(const MftNode& leaf, const MftNode* parent) {
  switch (leaf.kind) {
    case MftNodeKind::LeafSource: {
      const ir::LibFunction* lib =
          ir::LibraryModel::instance().find(leaf.source_callee);
      if (lib == nullptr) return FieldValueSource::Opaque;
      switch (lib->kind) {
        case ir::LibKind::SourceNvram: return FieldValueSource::Nvram;
        case ir::LibKind::SourceConfig: return FieldValueSource::Config;
        case ir::LibKind::SourceEnv: return FieldValueSource::Env;
        case ir::LibKind::SourceFrontend: return FieldValueSource::Frontend;
        case ir::LibKind::SourceDevInfo: return FieldValueSource::DevInfo;
        default: return FieldValueSource::Opaque;
      }
    }
    case MftNodeKind::LeafString: {
      if (parent != nullptr && parent->op != nullptr &&
          parent->op->opcode == ir::OpCode::Call &&
          ir::LibraryModel::instance().is_kind(parent->op->callee,
                                               ir::LibKind::FileOp)) {
        return FieldValueSource::FileRead;
      }
      return FieldValueSource::StringConst;
    }
    case MftNodeKind::LeafConst:
      return FieldValueSource::NumConst;
    default:
      return FieldValueSource::Opaque;
  }
}

/// Is this field's value produced by a crypto derivation somewhere on its
/// path (Signature = f(Dev-Secret))?
bool derived_on_path(const std::vector<const MftNode*>& path) {
  for (const MftNode* node : path) {
    if (node->op != nullptr && node->op->opcode == ir::OpCode::Call &&
        ir::LibraryModel::instance().is_kind(node->op->callee,
                                             ir::LibKind::Crypto))
      return true;
  }
  return false;
}

/// DNS-name shape: dotted labels with an alphabetic TLD. Rejects firmware
/// version strings ("a01.04.05.…") and dotted quads.
bool looks_like_hostname(const std::string& s) {
  const auto labels = support::split(s, '.');
  if (labels.size() < 2) return false;
  for (const std::string& label : labels) {
    if (label.empty()) return false;
    for (const char c : label) {
      if (!std::isalnum(static_cast<unsigned char>(c)) && c != '-')
        return false;
    }
  }
  const std::string& tld = labels.back();
  if (tld.size() < 2) return false;
  for (const char c : tld)
    if (!std::isalpha(static_cast<unsigned char>(c))) return false;
  return true;
}

/// Collect the ordered leaf ids of the simplified + inverted tree.
void ordered_leaf_ids(const MftNode& node, std::vector<int>& out) {
  if (node.is_leaf()) {
    out.push_back(node.leaf_id);
    return;
  }
  for (const auto& c : node.children) ordered_leaf_ids(*c, out);
}

/// Render one construction-path step for the provenance record.
std::string path_step(const MftNode& node) {
  if (node.op == nullptr) return mft_node_kind_name(node.kind);
  std::string step = ir::opcode_name(node.op->opcode);
  if (!node.op->callee.empty()) {
    step += ":";
    step += node.op->callee;
  }
  return step;
}

}  // namespace

bool Reconstructor::is_lan_address(const std::string& text) {
  return support::is_lan_address(text);
}

std::optional<ReconstructedMessage> Reconstructor::reconstruct_one(
    const Mft& mft, const std::string& executable,
    const analysis::ValueFlow* valueflow, MftDecision* decision) const {
  if (decision != nullptr) {
    decision->delivery_address = mft.delivery_op->address;
    decision->delivery_callee = mft.delivery_callee;
    decision->kept = true;
    decision->reason = "reconstructed";
  }
  SliceGenerator::Options slice_options;
  slice_options.valueflow = valueflow;
  const SliceGenerator slicer(mft, slice_options);
  const auto& slices = slicer.slices();

  // --- semantics per slice -------------------------------------------------
  std::map<int, ScoredClassification> scored;  // leaf_id → decision
  for (const FieldSlice& s : slices) {
    if (s.role != LeafRole::Field) continue;
    scored[s.leaf->leaf_id] = model_.classify_scored(s.slice_text);
  }
  const auto label_of = [&scored](int leaf_id) {
    const auto it = scored.find(leaf_id);
    return it == scored.end() ? fw::Primitive::None : it->second.label;
  };

  // --- §IV-D field grouping + LAN filter -----------------------------------
  // The group is the MFT itself (slices were generated from its paths; path
  // hashes give each slice a stable identity). Any Address-classified slice
  // (or host-looking constant) naming a LAN destination kills the group.
  std::string host;
  std::string endpoint;
  for (const FieldSlice& s : slices) {
    const bool address_like =
        (s.role == LeafRole::Field &&
         label_of(s.leaf->leaf_id) == fw::Primitive::Address) ||
        s.role == LeafRole::PathConst;
    if (s.role == LeafRole::Field || address_like) {
      // Check string constants on Address slices for LAN IPs.
      if (s.leaf->kind == MftNodeKind::LeafString &&
          is_lan_address(s.leaf->detail)) {
        if (decision != nullptr) {
          decision->kept = false;
          decision->reason = "lan-address:" + s.leaf->detail;
        }
        return std::nullopt;
      }
    }
    if (s.role == LeafRole::PathConst && endpoint.empty()) {
      std::string text = s.leaf->detail;
      // Full URLs split into host + path.
      for (const char* scheme : {"https://", "http://"}) {
        if (text.rfind(scheme, 0) == 0) {
          text = text.substr(std::string(scheme).size());
          const auto slash = text.find('/');
          if (slash != std::string::npos) {
            if (host.empty()) host = text.substr(0, slash);
            text = text.substr(slash);
          }
          break;
        }
      }
      if (!text.empty() && (text[0] == '/' || text[0] == '?'))
        endpoint = text;
    }
    // Query-style assembly embeds the path in the format string itself.
    if (s.role == LeafRole::FormatString && endpoint.empty()) {
      const std::string prefix = SliceGenerator::path_prefix(s.leaf->detail);
      if (!prefix.empty()) endpoint = prefix;
    }
    if (host.empty() && s.role == LeafRole::Field &&
        label_of(s.leaf->leaf_id) == fw::Primitive::Address) {
      host = s.leaf->detail;
    }
    // Hard-coded endpoints: a hostname-shaped string constant names the
    // cloud even when the model misses the Address label.
    if (host.empty() && s.role == LeafRole::Field &&
        s.leaf->kind == MftNodeKind::LeafString &&
        looks_like_hostname(s.leaf->detail)) {
      host = s.leaf->detail;
    }
  }

  // --- format inference -----------------------------------------------------
  fw::WireFormat format = fw::WireFormat::KeyValue;
  bool saw_json = false, saw_query = false;
  for (const FieldSlice& s : slices) {
    if (s.role == LeafRole::JsonKey) saw_json = true;
    if (s.role == LeafRole::FormatString) {
      if (s.leaf->detail.find('{') != std::string::npos ||
          s.leaf->detail.find("\":") != std::string::npos)
        saw_json = true;
      else if (s.leaf->detail.find('=') != std::string::npos)
        saw_query = true;
    }
    if (s.role == LeafRole::PathConst &&
        s.leaf->detail.find('?') != std::string::npos)
      saw_query = true;
  }
  if (saw_json)
    format = fw::WireFormat::Json;
  else if (saw_query)
    format = fw::WireFormat::Query;

  // --- field ordering via simplify + invert ---------------------------------
  std::vector<int> order;
  for (const auto& root : mft.roots) {
    auto simplified = simplify(*root);
    invert(*simplified);
    ordered_leaf_ids(*simplified, order);
  }
  std::map<int, int> rank;
  for (std::size_t i = 0; i < order.size(); ++i)
    rank.emplace(order[i], static_cast<int>(i));

  std::vector<const FieldSlice*> field_slices;
  for (const FieldSlice& s : slices)
    if (s.role == LeafRole::Field) field_slices.push_back(&s);
  std::sort(field_slices.begin(), field_slices.end(),
            [&rank](const FieldSlice* a, const FieldSlice* b) {
              const auto ra = rank.find(a->leaf->leaf_id);
              const auto rb = rank.find(b->leaf->leaf_id);
              const int ia = ra == rank.end() ? 1 << 20 : ra->second;
              const int ib = rb == rank.end() ? 1 << 20 : rb->second;
              return ia < ib;
            });

  // --- assemble -------------------------------------------------------------
  ReconstructedMessage msg;
  msg.executable = executable;
  msg.delivery_address = mft.delivery_op->address;
  msg.delivery_callee = mft.delivery_callee;
  msg.endpoint_path = endpoint;
  msg.host = host;
  msg.format = format;
  msg.multi_field_formats = slicer.multi_field_formats();
  for (const MftNode* leaf : mft.leaves()) {
    if (leaf->kind == MftNodeKind::LeafOpaque) ++msg.opaque_terminations;
    if (leaf->kind == MftNodeKind::LeafParam) ++msg.param_terminations;
    if (leaf->kind == MftNodeKind::LeafMemory) ++msg.memory_terminations;
  }

  for (const FieldSlice* s : field_slices) {
    const MftNode* leaf = s->leaf;
    const auto path = mft.path_to(leaf);
    const MftNode* parent = path.size() >= 2 ? path[path.size() - 2] : nullptr;

    ReconstructedField field;
    field.key = s->recovered_key;
    field.semantics = label_of(leaf->leaf_id);
    field.source = source_of_leaf(*leaf, parent);
    if (field.source == FieldValueSource::Opaque && derived_on_path(path))
      field.source = FieldValueSource::Derived;
    // A crypto step above a store-sourced leaf means the *wire value* is
    // derived, even though the taint sink is the secret's store.
    if ((field.source == FieldValueSource::Nvram ||
         field.source == FieldValueSource::Config) &&
        derived_on_path(path))
      field.source = FieldValueSource::Derived;
    field.source_detail = leaf->detail;
    if (leaf->kind == MftNodeKind::LeafString ||
        leaf->kind == MftNodeKind::LeafConst) {
      field.const_value = leaf->detail;
      field.hardcoded = field.source != FieldValueSource::FileRead;
    }
    field.slice_text = s->slice_text;
    field.leaf_id = leaf->leaf_id;

    // Fall back to the source key as the wire-name hint for keyless fields.
    if (field.key.empty() && leaf->kind == MftNodeKind::LeafSource)
      field.key = leaf->detail;

    // --- derivation record (docs/PROVENANCE.md) ---------------------------
    FieldProvenance& prov = field.provenance;
    if (const TaintProvenance* tp = mft.provenance_of(leaf->leaf_id)) {
      prov.visited_functions = tp->visited_functions;
      prov.devirt_crossings = tp->devirt_crossings;
      prov.callsite_crossings = tp->callsite_crossings;
      prov.memory_crossings = tp->memory_crossings;
      prov.taint_depth = tp->depth;
      prov.termination = tp->termination;
    }
    for (const MftNode* node : path)
      prov.construction_path.push_back(path_step(*node));
    prov.format_piece = s->format_piece;
    if (s->split_delimiter != '\0')
      prov.split_delimiter = std::string(1, s->split_delimiter);
    prov.split_score = s->split_score;
    prov.split_pieces = s->split_pieces;
    prov.model = model_.name();
    const auto sit = scored.find(leaf->leaf_id);
    if (sit != scored.end()) {
      prov.label_scores = sit->second.scores;
      prov.margin = sit->second.margin;
    }

    msg.fields.push_back(std::move(field));
  }
  return msg;
}

ReconstructionResult Reconstructor::reconstruct(
    const std::vector<Mft>& mfts, const std::string& executable,
    const analysis::ValueFlow* valueflow) const {
  ReconstructionResult out;
  for (const Mft& mft : mfts) {
    MftDecision decision;
    auto msg = reconstruct_one(mft, executable, valueflow, &decision);
    if (msg.has_value())
      out.messages.push_back(std::move(*msg));
    else
      ++out.discarded_lan;
    out.decisions.push_back(std::move(decision));
  }
  return out;
}

}  // namespace firmres::core
