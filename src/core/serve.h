// Long-running analysis service mode — `firmres serve` (docs/CACHING.md).
//
// A vendor-scale triage loop does not relaunch the CLI per firmware drop;
// it keeps one process warm (semantics model loaded, analysis cache hot)
// and feeds it image paths as they arrive. ServeSession implements that
// loop over a line protocol:
//
//   stdin (one command per line)        stdout (one JSON object per line)
//   ---------------------------         ---------------------------------
//   analyze <image-dir> [<dir>...]      {"event":"accepted","job":1,...}
//   ping                                {"event":"report","job":1,...}
//   quit (or EOF)                       {"event":"done","job":1,...}
//
// Jobs enter a FIFO queue and a single worker thread drains it, fanning
// each job's images across the existing CorpusRunner (Options::jobs). Per
// job the worker streams one "report" line per analyzed device — the exact
// analysis_to_json document batch `analyze --json` prints, timings omitted
// so the stream is byte-comparable — one "device_error" line per isolated
// failure (an unloadable or throwing image gets CorpusRunner's one-retry
// treatment and never sinks the job), and a closing "done" line.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "core/pipeline.h"
#include "core/semantics.h"

namespace firmres::core {

class ServeSession {
 public:
  struct Options {
    /// CorpusRunner fan-out within one job (1 = sequential).
    int jobs = 1;
    /// Retry a failed image once, sequentially (CorpusRunner semantics).
    bool retry_failed = true;
    /// Include per-job decision events in the stream: after each job, the
    /// worker collects the event log and emits one "events" line. Requires
    /// support::events::set_enabled(true) to record anything.
    bool stream_events = false;
    /// Emit a periodic "stats" heartbeat line every this many seconds
    /// (0 = off). Each heartbeat reports the interval's delta over the
    /// metrics registry: device throughput, per-phase latency percentiles,
    /// cache hit rate, queue depth, and jobs in flight — plus one final
    /// tick before "bye" covering the tail of the run, so even a short
    /// session with a long interval yields at least one record.
    double stats_interval_s = 0.0;
  };

  /// `model` must outlive the session. `pipeline_options.cache` may carry
  /// an AnalysisCache so repeat submissions of unchanged firmware are
  /// served from the store.
  ServeSession(const SemanticsModel& model, Pipeline::Options pipeline_options,
               Options options);

  /// Serve commands from `in` until `quit` or EOF, writing protocol lines
  /// to `out`. Pending jobs are drained before returning. Returns the
  /// number of jobs processed.
  int run(std::istream& in, std::ostream& out);

 private:
  Pipeline pipeline_;
  Options options_;
};

}  // namespace firmres::core
