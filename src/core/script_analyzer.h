// Script-based device-cloud extraction — an EXTENSION beyond the paper.
//
// §V-B: "the device-cloud interaction for the remaining two devices is
// handled by shell scripts and php files. At the current stage, FIRMRES can
// only deal with binary executables but not scripts." This module closes
// that gap for the two script shapes the corpus exhibits:
//
//   shell:  VAR=$(nvram get key) ... curl -X POST "https://host/path" (with
//           backslash line continuations)
//             -d "key=$VAR&…"
//   PHP:    $var = shell_exec('nvram get key');
//           $payload = array('key' => $var, …);
//           file_get_contents('https://host/path', …)
//
// Extraction is pattern-based (no shell/PHP interpreter): resolve simple
// variable definitions, find the HTTP call, parse its URL and body
// template, and emit ReconstructedMessages compatible with the rest of the
// pipeline (form check, probing, reporting). Fields sourced from
// `nvram get` carry the same source metadata binary taint produces, so the
// prober fills them identically.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/reconstructor.h"
#include "firmware/firmware_image.h"

namespace firmres::core {

class ScriptAnalyzer {
 public:
  explicit ScriptAnalyzer(const SemanticsModel& model) : model_(model) {}

  /// Extract device-cloud messages from one script file. Returns nothing
  /// when the script does not talk to a cloud endpoint.
  std::vector<ReconstructedMessage> analyze_script(
      const fw::FirmwareFile& file) const;

  /// Run over every script in an image.
  std::vector<ReconstructedMessage> analyze_image(
      const fw::FirmwareImage& image) const;

 private:
  const SemanticsModel& model_;
};

}  // namespace firmres::core
