#include "core/truth_match.h"

#include "support/strings.h"

namespace firmres::core {

bool field_matches_spec(const ReconstructedField& field,
                        const fw::FieldSpec& spec) {
  // Wire-key agreement.
  if (!field.key.empty() &&
      support::to_lower(field.key) == support::to_lower(spec.key))
    return true;
  // Source-key agreement (nvram key, getter name, file path, env name).
  if (!field.source_detail.empty()) {
    if (field.source_detail == spec.source_key) return true;
    // Config leaves carry only the key part of "<file>:<key>".
    const auto colon = spec.source_key.rfind(':');
    if (colon != std::string::npos &&
        field.source_detail == spec.source_key.substr(colon + 1))
      return true;
  }
  // Hard-coded value agreement.
  if (!field.const_value.empty() && field.const_value == spec.value)
    return true;
  // Derived (signature) fields: the taint sink is the secret's store, but
  // the spec field is the derived value.
  if (field.source == FieldValueSource::Derived &&
      spec.origin == fw::FieldOrigin::Derived)
    return true;
  // time()/rand() metadata.
  if (field.source == FieldValueSource::Opaque &&
      (spec.origin == fw::FieldOrigin::Timestamp ||
       spec.origin == fw::FieldOrigin::Counter) &&
      (field.source_detail == "time") ==
          (spec.origin == fw::FieldOrigin::Timestamp))
    return true;
  return false;
}

fw::Primitive truth_primitive(const ReconstructedField& field,
                              const fw::MessageSpec& spec) {
  for (const fw::FieldSpec& f : spec.fields) {
    if (field_matches_spec(field, f)) return f.primitive;
  }
  return fw::Primitive::None;
}

}  // namespace firmres::core
