// Built-in registry of the synthetic vendor SDK (docs/COMPONENTS.md).
//
// Substitution note (see DESIGN.md §2): real deployments would certify
// registries from vendor SDK releases; here the registry is certified from
// the same template emitters the synthesizer links into the shared-library
// corpus (fw::sdk_library_defs), so matches against that corpus exercise
// the full pipeline — fingerprinting, substitution, inventory, risk
// flagging — with known ground truth.
#pragma once

#include "analysis/components/registry.h"

namespace firmres::core {

/// Certifies every SDK library definition into one registry: vendorsdk
/// 1.4.2, vendorsdk 2.0.1 (sharing their core functions — the version-
/// ambiguity case), and the risky libtoken 0.9.1.
analysis::components::LibraryRegistry build_sdk_registry();

}  // namespace firmres::core
