// Field-semantics recovery interface (§IV-C).
//
// FIRMRES classifies each field's code slice into one of the seven labels
// {Dev-Identifier, Dev-Secret, User-Cred, Bind-Token, Signature, Address,
// None}. The production model is the neural classifier in src/nlp (the
// paper's BERT-TextCNN stand-in); `KeywordModel` is the dictionary matcher
// the paper uses for dataset auto-labeling, doubling as a fast baseline and
// the ablation comparator.
#pragma once

#include <string>
#include <vector>

#include "firmware/field_dictionary.h"
#include "firmware/primitives.h"

namespace firmres::core {

/// A classification decision with its evidence: per-label scores in
/// primitive order and the argmax margin — the classifier half of a field's
/// provenance record (docs/PROVENANCE.md).
struct ScoredClassification {
  fw::Primitive label = fw::Primitive::None;
  /// One score per primitive, indexed by the primitive's enum value. For
  /// probabilistic models these are the softmax outputs; rule-based models
  /// report 1.0 on the chosen label and 0.0 elsewhere.
  std::vector<double> scores;
  /// Winner's score minus the runner-up's (1.0 for rule-based models).
  double margin = 1.0;
};

class SemanticsModel {
 public:
  virtual ~SemanticsModel() = default;
  /// Classify one enriched code slice.
  virtual fw::Primitive classify(const std::string& slice_text) const = 0;
  /// Classify with per-label scores. The default adapts classify() into a
  /// degenerate distribution (1.0 on the label, margin 1.0); probabilistic
  /// models override it with their real scores.
  virtual ScoredClassification classify_scored(
      const std::string& slice_text) const {
    ScoredClassification out;
    out.label = classify(slice_text);
    out.scores.assign(fw::kPrimitiveCount, 0.0);
    out.scores[static_cast<std::size_t>(out.label)] = 1.0;
    out.margin = 1.0;
    return out;
  }
  /// Display name for reports/benches.
  virtual std::string name() const = 0;
};

/// Dictionary keyword matcher (the paper's auto-labeling rule).
class KeywordModel final : public SemanticsModel {
 public:
  fw::Primitive classify(const std::string& slice_text) const override {
    return fw::keyword_label(slice_text);
  }
  std::string name() const override { return "keyword-dictionary"; }
};

}  // namespace firmres::core
