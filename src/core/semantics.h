// Field-semantics recovery interface (§IV-C).
//
// FIRMRES classifies each field's code slice into one of the seven labels
// {Dev-Identifier, Dev-Secret, User-Cred, Bind-Token, Signature, Address,
// None}. The production model is the neural classifier in src/nlp (the
// paper's BERT-TextCNN stand-in); `KeywordModel` is the dictionary matcher
// the paper uses for dataset auto-labeling, doubling as a fast baseline and
// the ablation comparator.
#pragma once

#include <string>

#include "firmware/field_dictionary.h"
#include "firmware/primitives.h"

namespace firmres::core {

class SemanticsModel {
 public:
  virtual ~SemanticsModel() = default;
  /// Classify one enriched code slice.
  virtual fw::Primitive classify(const std::string& slice_text) const = 0;
  /// Display name for reports/benches.
  virtual std::string name() const = 0;
};

/// Dictionary keyword matcher (the paper's auto-labeling rule).
class KeywordModel final : public SemanticsModel {
 public:
  fw::Primitive classify(const std::string& slice_text) const override {
    return fw::keyword_label(slice_text);
  }
  std::string name() const override { return "keyword-dictionary"; }
};

}  // namespace firmres::core
