// Message reconstruction: concatenating identified fields (§IV-D).
//
// Groups field slices per MFT (path-hash matching), discards MFTs whose
// Address slices expose LAN destinations, simplifies + inverts the MFT to
// recover field order, infers the wire format, and emits the reconstructed
// device-cloud messages with semantic annotations attached — the testing
// cues the analyst forges messages from (§IV-E).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/mft.h"
#include "core/semantics.h"
#include "core/slices.h"
#include "firmware/message_spec.h"

namespace firmres::core {

/// How a reconstructed field's value is obtained on the device.
enum class FieldValueSource {
  Nvram,
  Config,
  Env,
  Frontend,
  DevInfo,
  StringConst,
  NumConst,
  FileRead,
  Derived,    ///< crypto-derived (hmac/md5 over another value)
  Opaque,     ///< time()/rand()/unresolved
};

const char* field_value_source_name(FieldValueSource s);

/// Root-to-leaf derivation record for one reconstructed field — the full
/// audit trail `firmres explain` renders (docs/PROVENANCE.md): how the
/// taint walk reached the leaf (§IV-B), how the format string was split
/// (§IV-C separation), and what the classifier scored (§IV-C semantics).
struct FieldProvenance {
  // §IV-B taint walk (from the Mft's TaintProvenance).
  std::vector<std::string> visited_functions;
  int devirt_crossings = 0;
  int callsite_crossings = 0;
  /// Load→reaching-Store hops resolved through the points-to memory
  /// def-use index (docs/POINTSTO.md).
  int memory_crossings = 0;
  int taint_depth = 0;
  std::string termination;
  /// Construction path root→leaf: "opcode" or "opcode:callee" per step.
  std::vector<std::string> construction_path;
  // §IV-C format-split decision (zeroed when no sprintf split applied).
  std::string format_piece;
  std::string split_delimiter;  ///< one-char string; empty when unsplit
  double split_score = 0.0;
  int split_pieces = 0;
  // §IV-C classifier decision.
  std::string model;
  std::vector<double> label_scores;  ///< primitive-enum order
  double margin = 0.0;
  /// Registry-matched library functions the taint walk crossed (labels like
  /// "vsdk_log_init [vendorsdk 1.4.2]", sorted): this field's derivation
  /// was partly resolved via registry match instead of live analysis
  /// (docs/COMPONENTS.md). Annotated post-hoc by the pipeline — never part
  /// of cached artifacts, so warm and cold runs stay byte-identical.
  std::vector<std::string> registry_components;
};

/// Why one MFT was kept as a message or dropped by the §IV-D LAN filter.
struct MftDecision {
  std::uint64_t delivery_address = 0;
  std::string delivery_callee;
  bool kept = true;
  /// "reconstructed" or "lan-address:<the offending constant>".
  std::string reason;
};

struct ReconstructedField {
  /// Recovered wire key (format piece / cJSON key); may be empty for
  /// concat-style assembly.
  std::string key;
  /// Model-recovered semantics.
  fw::Primitive semantics = fw::Primitive::None;
  FieldValueSource source = FieldValueSource::Opaque;
  /// NVRAM/config key, getter/crypto callee, file path, or constant value.
  std::string source_detail;
  /// For StringConst/NumConst: the hard-coded value itself.
  std::string const_value;
  /// The enriched code slice this field was classified from.
  std::string slice_text;
  int leaf_id = -1;
  bool hardcoded = false;  ///< value burned into the binary (§IV-E tracking)
  /// Full derivation record behind this field's key/semantics/source.
  FieldProvenance provenance;
};

struct ReconstructedMessage {
  std::string executable;
  std::uint64_t delivery_address = 0;
  std::string delivery_callee;
  /// Recovered request path or MQTT topic (empty when not evident).
  std::string endpoint_path;
  /// Recovered Address (host) — constant value or source detail; empty when
  /// "not directly evident in the firmware image" (§V-C).
  std::string host;
  fw::WireFormat format = fw::WireFormat::KeyValue;
  /// Fields in recovered concatenation order.
  std::vector<ReconstructedField> fields;
  /// Multi-conversion sprintf format strings seen while reconstructing this
  /// message (drives the Table II clustering-threshold statistics).
  std::vector<std::string> multi_field_formats;
  /// §V-C visibility: how many of this MFT's taint walks terminated without
  /// a source — at an opaque call result, or at a parameter/undefined value
  /// no callsite explains. High counts flag overtaint in the recovery.
  int opaque_terminations = 0;
  int param_terminations = 0;
  /// Loads whose cell the points-to index could not resolve to any store
  /// (docs/POINTSTO.md ⊥): the memory analogue of the counts above.
  int memory_terminations = 0;

  bool has_primitive(fw::Primitive p) const;
};

struct ReconstructionResult {
  std::vector<ReconstructedMessage> messages;
  /// MFTs discarded by the LAN-address filter.
  int discarded_lan = 0;
  /// Keep/drop decision per input MFT, in input order.
  std::vector<MftDecision> decisions;
};

class Reconstructor {
 public:
  explicit Reconstructor(const SemanticsModel& model) : model_(model) {}

  /// Reconstruct all messages of one program's MFTs. `valueflow` (optional,
  /// not owned) lets slice generation recover non-literal sprintf formats.
  ReconstructionResult reconstruct(
      const std::vector<Mft>& mfts, const std::string& executable,
      const analysis::ValueFlow* valueflow = nullptr) const;

  /// One MFT → one message (or nullopt when LAN-filtered). `decision`
  /// (optional, not owned) receives the keep/drop record.
  std::optional<ReconstructedMessage> reconstruct_one(
      const Mft& mft, const std::string& executable,
      const analysis::ValueFlow* valueflow = nullptr,
      MftDecision* decision = nullptr) const;

  /// §IV-D LAN predicate: 10.*, 172.16-31.*, 192.168.*, FE80-prefixed IPv6,
  /// multicast (224-239.*), broadcast.
  static bool is_lan_address(const std::string& text);

 private:
  const SemanticsModel& model_;
};

}  // namespace firmres::core
