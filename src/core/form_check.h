// Message form check (§IV-E, automatic half).
//
// Flags reconstructed messages whose semantic annotations match none of the
// §II-B access-control compositions:
//   binding:   Dev-Identifier + Dev-Secret + User-Cred
//   business ① Dev-Identifier + Bind-Token
//   business ② Dev-Identifier + Signature
//   business ③ Dev-Identifier + Dev-Secret + User-Cred
// and, separately, tracks hard-coded Dev-Secret / Bind-Token values —
// pattern (1) <Variable = Constant> and pattern (2)
// <Variable = Function(Constant)> (credential read from a file shipped in
// the image).
#pragma once

#include <string>
#include <vector>

#include "core/reconstructor.h"

namespace firmres::core {

enum class FlawKind {
  MissingPrimitives,  ///< no valid composition present
  HardcodedSecret,    ///< Dev-Secret/Bind-Token burned into binary or file
};

const char* flaw_kind_name(FlawKind kind);

struct FlawReport {
  /// Index into the checked message vector.
  std::size_t message_index = 0;
  std::uint64_t delivery_address = 0;
  FlawKind kind = FlawKind::MissingPrimitives;
  std::string detail;
  /// Primitives the message does carry (for the report).
  std::vector<fw::Primitive> present;
};

class FormChecker {
 public:
  /// Check every message; multiple flaws per message possible.
  /// `image_files` lists the paths present in the firmware image: a
  /// credential read from a file is only a leak when the file actually
  /// ships in the image ("we try to read the file from the firmware
  /// system", §IV-E) — factory-provisioned per-device key files do not.
  std::vector<FlawReport> check(
      const std::vector<ReconstructedMessage>& messages,
      const std::vector<std::string>& image_files = {}) const;

  /// Does the message satisfy any §II-B composition?
  static bool satisfies_any_form(const ReconstructedMessage& msg);
};

}  // namespace firmres::core
