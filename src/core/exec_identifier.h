// Pinpointing device-cloud executables (§IV-A).
//
// Step 1 — request-handler identification: pair fun_in (recv*) and fun_out
// (send*) anchor callsites by closest call-graph distance; the function
// call sequence between an anchor pair is a candidate handler; score it
// with the string-parsing factor
//     P_f = O_r / O,   score_S = max_{f in S} P_f
// where O_r counts predicate operands derived (by forward taint) from the
// incoming request and O counts all predicate operands.
//
// Step 2 — asynchronous-handler identification: a request handler whose
// fun_in caller has no direct invocation (it is event-registered) is
// asynchronous. An executable containing an asynchronous request handler
// is a device-cloud executable.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "analysis/call_graph.h"
#include "analysis/valueflow/valueflow.h"
#include "ir/program.h"

namespace firmres::core {

struct HandlerCandidate {
  analysis::CallSite recv_site;
  analysis::CallSite send_site;
  /// Functions of the candidate sequence (anchor path + one-hop callees).
  std::vector<const ir::Function*> sequence;
  /// score_S = max P_f over the sequence.
  double score = 0.0;
  /// The function attaining the max (the "main parsing function").
  const ir::Function* parser = nullptr;
  /// Per-function P_f values, parallel to `sequence`.
  std::vector<double> pf;
  /// True when the recv-containing function has no direct caller.
  bool asynchronous = false;
  /// score >= threshold: the pair's sequence is a request handler.
  bool is_request_handler = false;
};

struct ExecIdentification {
  const ir::Program* program = nullptr;
  std::vector<HandlerCandidate> candidates;
  /// Device-cloud verdict: at least one asynchronous request handler.
  bool is_device_cloud = false;
};

class ExecutableIdentifier {
 public:
  struct Options {
    /// Minimum string-parsing factor for a sequence to count as a request
    /// handler. The device-cloud dispatch/parse shape scores ~0.4-0.5;
    /// IPC bookkeeping loops score well below 0.2.
    double pf_threshold = 0.3;
    /// Disable the asynchronous filter (ablation bench).
    bool require_async = true;
    /// Disable P_f scoring and accept any recv/send pair (ablation bench:
    /// the naive "has recv+send" heuristic).
    bool use_pf_scoring = true;
    /// Build the call graph with value-flow devirtualization, so anchor
    /// pairs connected only through resolved CallInd edges are still found
    /// (docs/VALUEFLOW.md). Off = direct-call edges only (ablation bench).
    /// Only affects the analyze(program) overload; the overload taking a
    /// prebuilt CallGraph uses whatever graph it is given.
    bool devirtualize = true;
    /// Registry-matched substitutions threaded into the devirtualizing
    /// value-flow solve (docs/COMPONENTS.md). Not owned; may cover
    /// functions of other programs. analyze(program) overload only.
    const std::map<const ir::Function*, analysis::ValueFlow::Substitution>*
        substitutions = nullptr;
    /// Registry-certified branchless functions: no CBranch means no
    /// predicate operands, so their P_f is pinned to the exact 0.0 the
    /// scan would compute, skipping the forward-taint membership counts.
    const std::set<const ir::Function*>* registry_branchless = nullptr;
  };

  ExecutableIdentifier() : options_() {}
  explicit ExecutableIdentifier(Options options) : options_(options) {}

  ExecIdentification analyze(const ir::Program& program) const;
  ExecIdentification analyze(const ir::Program& program,
                             const analysis::CallGraph& call_graph) const;

 private:
  Options options_;
};

}  // namespace firmres::core
