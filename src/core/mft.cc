#include "core/mft.h"

#include <sstream>

#include "support/hash.h"
#include "support/strings.h"

namespace firmres::core {

const char* mft_node_kind_name(MftNodeKind kind) {
  switch (kind) {
    case MftNodeKind::Root: return "Root";
    case MftNodeKind::Op: return "Op";
    case MftNodeKind::LeafConst: return "LeafConst";
    case MftNodeKind::LeafString: return "LeafString";
    case MftNodeKind::LeafSource: return "LeafSource";
    case MftNodeKind::LeafOpaque: return "LeafOpaque";
    case MftNodeKind::LeafParam: return "LeafParam";
    case MftNodeKind::LeafMemory: return "LeafMemory";
  }
  return "?";
}

namespace {

void count_nodes(const MftNode& node, std::size_t& nodes, std::size_t& leaves) {
  ++nodes;
  if (node.is_leaf()) ++leaves;
  for (const auto& c : node.children) count_nodes(*c, nodes, leaves);
}

void collect_leaves(const MftNode& node, std::vector<const MftNode*>& out) {
  if (node.is_leaf()) out.push_back(&node);
  for (const auto& c : node.children) collect_leaves(*c, out);
}

bool find_path(const MftNode& node, const MftNode* leaf,
               std::vector<const MftNode*>& path) {
  path.push_back(&node);
  if (&node == leaf) return true;
  for (const auto& c : node.children) {
    if (find_path(*c, leaf, path)) return true;
  }
  path.pop_back();
  return false;
}

std::uint64_t node_token(const MftNode& node) {
  std::uint64_t h = support::fnv1a64(mft_node_kind_name(node.kind));
  if (node.op != nullptr) h = support::hash_combine(h, node.op->address);
  h = support::hash_combine(h, support::fnv1a64(node.detail));
  h = support::hash_combine(h, static_cast<std::uint64_t>(node.src_index + 1));
  return h;
}

void render_node(const MftNode& node, int depth, std::ostringstream& os) {
  os << std::string(static_cast<std::size_t>(depth) * 2, ' ')
     << mft_node_kind_name(node.kind);
  if (node.op != nullptr && node.op->opcode == ir::OpCode::Call)
    os << " " << node.op->callee;
  else if (node.op != nullptr)
    os << " " << ir::opcode_name(node.op->opcode);
  if (!node.detail.empty()) os << " [" << node.detail << "]";
  if (node.leaf_id >= 0) os << " #" << node.leaf_id;
  os << "\n";
  for (const auto& c : node.children) render_node(*c, depth + 1, os);
}

}  // namespace

std::size_t Mft::node_count() const {
  std::size_t nodes = 0, leaves = 0;
  for (const auto& r : roots) count_nodes(*r, nodes, leaves);
  return nodes;
}

std::size_t Mft::leaf_count() const {
  std::size_t nodes = 0, leaves = 0;
  for (const auto& r : roots) count_nodes(*r, nodes, leaves);
  return leaves;
}

const TaintProvenance* Mft::provenance_of(int leaf_id) const {
  for (const TaintProvenance& p : provenance)
    if (p.leaf_id == leaf_id) return &p;
  return nullptr;
}

std::vector<const MftNode*> Mft::leaves() const {
  std::vector<const MftNode*> out;
  for (const auto& r : roots) collect_leaves(*r, out);
  return out;
}

std::vector<const MftNode*> Mft::path_to(const MftNode* leaf) const {
  for (const auto& r : roots) {
    std::vector<const MftNode*> path;
    if (find_path(*r, leaf, path)) return path;
  }
  return {};
}

std::uint64_t Mft::path_hash(const MftNode* leaf) const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const MftNode* node : path_to(leaf))
    h = support::hash_combine(h, node_token(*node));
  return h;
}

std::unique_ptr<MftNode> simplify(const MftNode& root) {
  // Post-order: simplify children, then collapse single-child interior
  // nodes (formatting/encoding steps irrelevant to field concatenation).
  auto copy = std::make_unique<MftNode>();
  copy->kind = root.kind;
  copy->fn = root.fn;
  copy->op = root.op;
  copy->var = root.var;
  copy->src_index = root.src_index;
  copy->detail = root.detail;
  copy->source_callee = root.source_callee;
  copy->leaf_id = root.leaf_id;
  for (const auto& c : root.children) {
    auto sc = simplify(*c);
    if (!sc->is_leaf() && sc->kind != MftNodeKind::Root &&
        sc->children.size() == 1) {
      // Chain node: splice its only child up.
      copy->children.push_back(std::move(sc->children.front()));
    } else {
      copy->children.push_back(std::move(sc));
    }
  }
  return copy;
}

void invert(MftNode& node) {
  std::reverse(node.children.begin(), node.children.end());
  for (auto& c : node.children) invert(*c);
}

std::string render_mft(const Mft& mft) {
  std::ostringstream os;
  os << "MFT @" << (mft.delivery_op != nullptr
                        ? support::format("0x%llx", static_cast<unsigned long long>(
                                                        mft.delivery_op->address))
                        : std::string("?"))
     << " " << mft.delivery_callee << " (" << mft.node_count() << " nodes, "
     << mft.leaf_count() << " leaves)\n";
  for (const auto& r : mft.roots) render_node(*r, 1, os);
  return os.str();
}

}  // namespace firmres::core
