#include "core/taint.h"

#include <algorithm>
#include <set>
#include <tuple>

#include "analysis/flow.h"
#include "analysis/pointsto/pointsto.h"
#include "ir/library.h"
#include "support/error.h"
#include "support/observability/metrics.h"
#include "support/observability/trace.h"
#include "support/strings.h"

namespace firmres::core {

namespace {

using analysis::FlowEdge;
using analysis::FlowKind;

// §IV-B taint-walk counters (Work-kind: one step per MFT node expanded,
// deterministic at any jobs level — docs/OBSERVABILITY.md).
support::metrics::Counter g_taint_steps("taint.steps",
                                        support::metrics::Kind::Work);
support::metrics::Counter g_taint_mfts_built("taint.mfts_built",
                                             support::metrics::Kind::Work);
support::metrics::Counter g_taint_budget_exhausted(
    "taint.budget_exhausted", support::metrics::Kind::Work);

struct BuildCtx {
  const ir::Program& program;
  const analysis::CallGraph& call_graph;
  const MftBuilder::Options& options;
  /// Memory def-use index; nullptr runs the legacy address chase only.
  const analysis::pointsto::PointsTo* pointsto = nullptr;
  std::size_t nodes = 0;
  int next_leaf_id = 0;
  /// (function, varnode, bound) triples on the current recursion path —
  /// guards against strongly-connected construction patterns.
  std::set<std::tuple<const ir::Function*, ir::VarNode, std::uint64_t>> stack;
  /// Walk-state for provenance: the function chain of the current path and
  /// how many devirtualized / caller-ascent crossings it took to get here.
  /// Snapshot into a TaintProvenance record at every leaf.
  std::vector<std::string> fn_chain;
  int devirt_crossings = 0;
  int callsite_crossings = 0;
  int memory_crossings = 0;
  std::vector<TaintProvenance> provenance;
};

void record_leaf(BuildCtx& ctx, const MftNode& leaf, const char* termination,
                 int depth) {
  TaintProvenance p;
  p.leaf_id = leaf.leaf_id;
  p.visited_functions = ctx.fn_chain;
  p.devirt_crossings = ctx.devirt_crossings;
  p.callsite_crossings = ctx.callsite_crossings;
  p.memory_crossings = ctx.memory_crossings;
  p.depth = depth;
  p.termination = termination;
  ctx.provenance.push_back(std::move(p));
}

std::unique_ptr<MftNode> make_node(BuildCtx& ctx, MftNodeKind kind) {
  ++ctx.nodes;
  g_taint_steps.add();
  auto node = std::make_unique<MftNode>();
  node->kind = kind;
  if (node->is_leaf()) node->leaf_id = ctx.next_leaf_id++;
  return node;
}

std::unique_ptr<MftNode> const_leaf(BuildCtx& ctx, const ir::Function& fn,
                                    const ir::VarNode& var, int src_index,
                                    int depth) {
  if (var.is_ram()) {
    auto leaf = make_node(ctx, MftNodeKind::LeafString);
    leaf->fn = &fn;
    leaf->var = var;
    leaf->src_index = src_index;
    const auto text = ctx.program.data().string_at(var.offset);
    leaf->detail = text.has_value() ? std::string(*text)
                                    : support::format("<ram:0x%llx>",
                                                      static_cast<unsigned long long>(var.offset));
    record_leaf(ctx, *leaf, "string-constant", depth);
    return leaf;
  }
  auto leaf = make_node(ctx, MftNodeKind::LeafConst);
  leaf->fn = &fn;
  leaf->var = var;
  leaf->src_index = src_index;
  leaf->detail = std::to_string(var.offset);
  record_leaf(ctx, *leaf, "numeric-constant", depth);
  return leaf;
}

/// Forward declaration: expand a varnode into the def-op nodes feeding it.
std::vector<std::unique_ptr<MftNode>> expand_var(BuildCtx& ctx,
                                                 const ir::Function& fn,
                                                 const ir::VarNode& var,
                                                 std::uint64_t before_addr,
                                                 int src_index, int depth);

/// Leaf for a field-source library call (§IV-B taint sinks).
std::unique_ptr<MftNode> source_leaf(BuildCtx& ctx, const ir::Function& fn,
                                     const FlowEdge& edge, int src_index,
                                     int depth) {
  auto leaf = make_node(ctx, MftNodeKind::LeafSource);
  leaf->fn = &fn;
  leaf->op = edge.op;
  leaf->var = edge.dst;
  leaf->src_index = src_index;
  leaf->source_callee = edge.op->callee;
  const ir::LibFunction* lib = ir::LibraryModel::instance().find(edge.op->callee);
  if (lib != nullptr && lib->key_arg >= 0 &&
      static_cast<std::size_t>(lib->key_arg) < edge.op->inputs.size()) {
    const ir::VarNode& key = edge.op->inputs[static_cast<std::size_t>(lib->key_arg)];
    if (key.is_ram()) {
      const auto text = ctx.program.data().string_at(key.offset);
      if (text.has_value()) leaf->detail = std::string(*text);
    }
  }
  if (leaf->detail.empty()) leaf->detail = edge.op->callee;
  record_leaf(ctx, *leaf, "field-source", depth);
  return leaf;
}

std::unique_ptr<MftNode> opaque_leaf(BuildCtx& ctx, const ir::Function& fn,
                                     const ir::PcodeOp& op,
                                     const ir::VarNode& var, int src_index,
                                     int depth) {
  auto leaf = make_node(ctx, MftNodeKind::LeafOpaque);
  leaf->fn = &fn;
  leaf->op = &op;
  leaf->var = var;
  leaf->src_index = src_index;
  leaf->detail = op.opcode == ir::OpCode::Call ? op.callee
                                               : ir::opcode_name(op.opcode);
  record_leaf(ctx, *leaf, "opaque-call", depth);
  return leaf;
}

std::unique_ptr<MftNode> param_leaf(BuildCtx& ctx, const ir::Function& fn,
                                    const ir::VarNode& var, int src_index,
                                    const char* termination, int depth) {
  auto leaf = make_node(ctx, MftNodeKind::LeafParam);
  leaf->fn = &fn;
  leaf->var = var;
  leaf->src_index = src_index;
  const ir::VarInfo* info = fn.var_info(var);
  leaf->detail = info != nullptr ? info->name : var.to_string();
  record_leaf(ctx, *leaf, termination, depth);
  return leaf;
}

/// Leaf for a Load the memory def-use index could not resolve: the address
/// has no tracked reaching Store and no modelled-summary write either, so
/// the value's origin is genuinely unknown (docs/POINTSTO.md ⊥).
std::unique_ptr<MftNode> memory_leaf(BuildCtx& ctx, const ir::Function& fn,
                                     const ir::PcodeOp& op,
                                     const ir::VarNode& var, int src_index,
                                     const analysis::pointsto::LoadResolution& res,
                                     int depth) {
  auto leaf = make_node(ctx, MftNodeKind::LeafMemory);
  leaf->fn = &fn;
  leaf->op = &op;
  leaf->var = var;
  leaf->src_index = src_index;
  for (std::size_t i = 0; i < res.locs.size() && i < 4; ++i) {
    if (!leaf->detail.empty()) leaf->detail += ",";
    leaf->detail += analysis::pointsto::absloc_name(res.locs[i], ctx.program);
  }
  if (leaf->detail.empty())
    leaf->detail = res.resolved ? "<no-store>" : "<escaped>";
  record_leaf(ctx, *leaf, "memory-unresolved", depth);
  return leaf;
}

/// Expand one source slot of an op: constants become leaves directly,
/// other varnodes expand into their def-op nodes.
void expand_src(BuildCtx& ctx, const ir::Function& fn, MftNode& parent,
                const ir::VarNode& src, std::uint64_t before_addr,
                int src_index, int depth) {
  if (ctx.nodes >= ctx.options.max_nodes) return;
  if (src.is_constant() || src.is_ram()) {
    parent.children.push_back(const_leaf(ctx, fn, src, src_index, depth));
    return;
  }
  auto defs = expand_var(ctx, fn, src, before_addr, src_index, depth);
  for (auto& d : defs) parent.children.push_back(std::move(d));
}

/// Node for one defining op of a varnode.
std::unique_ptr<MftNode> def_node(BuildCtx& ctx, const ir::Function& fn,
                                  const FlowEdge& edge, int src_index,
                                  int depth) {
  if (edge.kind == FlowKind::FieldSource)
    return source_leaf(ctx, fn, edge, src_index, depth);

  // Memory def-use (docs/POINTSTO.md): a Load whose cell has no reaching
  // Store and no modelled-summary write terminates here — the legacy
  // address chase would only manufacture an `undefined-local`.
  const analysis::pointsto::LoadResolution* mem = nullptr;
  if (ctx.pointsto != nullptr && edge.op->opcode == ir::OpCode::Load) {
    mem = ctx.pointsto->resolve_load(edge.op);
    if (mem != nullptr && mem->stores.empty() && !mem->summary_written)
      return memory_leaf(ctx, fn, *edge.op, edge.dst, src_index, *mem, depth);
  }

  auto node = make_node(ctx, MftNodeKind::Op);
  node->fn = &fn;
  node->op = edge.op;
  node->var = edge.dst;
  node->src_index = src_index;

  if (edge.kind == FlowKind::LocalCall) {
    // Descend into the callee's returned values.
    const ir::Function* callee = ctx.program.function(edge.op->callee);
    if (callee != nullptr && !callee->is_import() &&
        !ctx.stack.contains({callee, ir::VarNode{}, 0})) {
      ctx.stack.insert({callee, ir::VarNode{}, 0});
      ctx.fn_chain.push_back(callee->name());
      callee->for_each_op([&](const ir::PcodeOp& op) {
        if (op.opcode != ir::OpCode::Return) return;
        for (const ir::VarNode& rv : op.inputs) {
          expand_src(ctx, *callee, *node, rv, UINT64_MAX, 0, depth + 1);
        }
      });
      ctx.fn_chain.pop_back();
      ctx.stack.erase({callee, ir::VarNode{}, 0});
    }
    return node;
  }

  if (mem != nullptr && !mem->stores.empty()) {
    // Continue the backward walk through every reaching Store: one Op node
    // per Store, expanding the value it wrote at the point it wrote it.
    for (const analysis::pointsto::StoreRef& st : mem->stores) {
      if (ctx.nodes >= ctx.options.max_nodes) break;
      if (st.op->inputs.size() < 2 || st.fn == nullptr) continue;
      auto store_node = make_node(ctx, MftNodeKind::Op);
      store_node->fn = st.fn;
      store_node->op = st.op;
      store_node->var = st.op->inputs[1];
      store_node->src_index = 1;
      ++ctx.memory_crossings;
      const bool crosses_fn = st.fn != &fn;
      if (crosses_fn) ctx.fn_chain.push_back(st.fn->name());
      expand_src(ctx, *st.fn, *store_node, st.op->inputs[1], st.op->address,
                 1, depth + 1);
      if (crosses_fn) ctx.fn_chain.pop_back();
      --ctx.memory_crossings;
      node->children.push_back(std::move(store_node));
    }
    // Cells also written through modelled library summaries (sprintf into
    // the same buffer) additionally keep the legacy address chase below.
    if (!mem->summary_written) return node;
  }

  // Summary / Direct / Overtaint: expand each source slot. The slot index
  // recorded on children distinguishes format strings (sprintf input 1) and
  // JSON keys (cJSON_Add input 1) from value arguments.
  for (std::size_t i = 0; i < edge.op->inputs.size(); ++i) {
    const ir::VarNode& input = edge.op->inputs[i];
    if (input == edge.dst) continue;  // append semantics: siblings carry it
    const bool is_src =
        std::find(edge.srcs.begin(), edge.srcs.end(), input) != edge.srcs.end();
    if (!is_src) continue;
    expand_src(ctx, fn, *node, input, edge.op->address, static_cast<int>(i),
               depth + 1);
  }
  return node;
}

/// Node for a devirtualized CallInd whose output feeds the taint: like a
/// FlowKind::LocalCall, descend into the resolved target's RETURN inputs
/// instead of terminating at an opaque leaf.
std::unique_ptr<MftNode> devirt_call_node(BuildCtx& ctx,
                                          const ir::Function& fn,
                                          const ir::PcodeOp& op,
                                          const ir::VarNode& var,
                                          int src_index,
                                          const ir::Function& callee,
                                          int depth) {
  auto node = make_node(ctx, MftNodeKind::Op);
  node->fn = &fn;
  node->op = &op;
  node->var = var;
  node->src_index = src_index;
  if (!ctx.stack.contains({&callee, ir::VarNode{}, 0})) {
    ctx.stack.insert({&callee, ir::VarNode{}, 0});
    ctx.fn_chain.push_back(callee.name());
    ++ctx.devirt_crossings;
    callee.for_each_op([&](const ir::PcodeOp& rop) {
      if (rop.opcode != ir::OpCode::Return) return;
      for (const ir::VarNode& rv : rop.inputs) {
        expand_src(ctx, callee, *node, rv, UINT64_MAX, 0, depth + 1);
      }
    });
    --ctx.devirt_crossings;
    ctx.fn_chain.pop_back();
    ctx.stack.erase({&callee, ir::VarNode{}, 0});
  }
  return node;
}

std::vector<std::unique_ptr<MftNode>> expand_var(BuildCtx& ctx,
                                                 const ir::Function& fn,
                                                 const ir::VarNode& var,
                                                 std::uint64_t before_addr,
                                                 int src_index, int depth) {
  std::vector<std::unique_ptr<MftNode>> out;
  if (ctx.nodes >= ctx.options.max_nodes || depth > ctx.options.max_depth)
    return out;
  const auto stack_key = std::make_tuple(&fn, var, before_addr);
  if (ctx.stack.contains(stack_key)) return out;
  ctx.stack.insert(stack_key);

  // Scan for defining ops before the use point, in layout order; emit them
  // in reverse (backward-discovery) order — §IV-D's inversion step later
  // restores concatenation order.
  struct Def {
    FlowEdge edge;
    bool opaque = false;
    const ir::PcodeOp* op = nullptr;
  };
  std::vector<Def> defs;
  for (const ir::PcodeOp* op : fn.ops_in_order()) {
    if (op->address >= before_addr) break;
    bool matched = false;
    for (const FlowEdge& edge : analysis::flow_edges(*op, ctx.program)) {
      if (edge.dst == var) {
        defs.push_back(Def{.edge = edge, .opaque = false, .op = op});
        matched = true;
      }
    }
    if (!matched && op->output.has_value() && *op->output == var) {
      defs.push_back(Def{.edge = {}, .opaque = true, .op = op});
    }
  }

  if (!defs.empty()) {
    for (auto it = defs.rbegin(); it != defs.rend(); ++it) {
      if (ctx.nodes >= ctx.options.max_nodes) break;
      if (it->opaque) {
        const ir::Function* devirt =
            it->op->opcode == ir::OpCode::CallInd
                ? ctx.call_graph.indirect_target(it->op)
                : nullptr;
        if (devirt != nullptr && !devirt->is_import()) {
          out.push_back(devirt_call_node(ctx, fn, *it->op, var, src_index,
                                         *devirt, depth));
        } else {
          out.push_back(opaque_leaf(ctx, fn, *it->op, var, src_index, depth));
        }
      } else {
        out.push_back(def_node(ctx, fn, it->edge, src_index, depth));
      }
    }
    ctx.stack.erase(stack_key);
    return out;
  }

  // No local definition. Parameter? Trace every callsite of this function.
  const auto& params = fn.params();
  const auto param_it = std::find(params.begin(), params.end(), var);
  if (param_it != params.end()) {
    const auto arg_index =
        static_cast<std::size_t>(param_it - params.begin());
    // Includes devirtualized CallInd sites (arg_offset skips the pointer
    // operand); without value flow this equals the direct sites.
    const auto sites = ctx.call_graph.resolved_callsites_of(fn.name());
    int expanded = 0;
    for (const analysis::CallSite& site : sites) {
      if (expanded >= ctx.options.max_callsites) break;
      const std::size_t input_index = site.arg_offset + arg_index;
      if (input_index >= site.op->inputs.size()) continue;
      const ir::VarNode& arg = site.op->inputs[input_index];
      ctx.fn_chain.push_back(site.caller->name());
      ++ctx.callsite_crossings;
      if (arg.is_constant() || arg.is_ram()) {
        out.push_back(const_leaf(ctx, *site.caller, arg, src_index, depth));
      } else {
        auto defs_up = expand_var(ctx, *site.caller, arg, site.op->address,
                                  src_index, depth + 1);
        for (auto& d : defs_up) out.push_back(std::move(d));
      }
      --ctx.callsite_crossings;
      ctx.fn_chain.pop_back();
      ++expanded;
    }
    if (out.empty())
      out.push_back(param_leaf(ctx, fn, var, src_index, "unresolved-param",
                               depth));
    ctx.stack.erase(stack_key);
    return out;
  }

  // Undefined local / register: terminal unknown.
  out.push_back(param_leaf(ctx, fn, var, src_index, "undefined-local", depth));
  ctx.stack.erase(stack_key);
  return out;
}

}  // namespace

MftBuilder::MftBuilder(const ir::Program& program,
                       const analysis::CallGraph& call_graph)
    : MftBuilder(program, call_graph, Options{}) {}

MftBuilder::MftBuilder(const ir::Program& program,
                       const analysis::CallGraph& call_graph, Options options)
    : program_(program), call_graph_(call_graph), options_(options) {}

MftBuilder::MftBuilder(const ir::Program& program,
                       const analysis::CallGraph& call_graph, Options options,
                       const analysis::pointsto::PointsTo* pointsto)
    : program_(program),
      call_graph_(call_graph),
      options_(options),
      pointsto_(pointsto) {}

Mft MftBuilder::build(const analysis::CallSite& delivery) const {
  FIRMRES_SPAN("taint.build_mft", "taint");
  FIRMRES_CHECK(delivery.op != nullptr && delivery.caller != nullptr);
  Mft mft;
  mft.program = &program_;
  mft.delivery_fn = delivery.caller;
  mft.delivery_op = delivery.op;
  mft.delivery_callee = delivery.op->callee;

  const ir::LibFunction* lib =
      ir::LibraryModel::instance().find(delivery.op->callee);
  std::vector<int> msg_args;
  if (lib != nullptr && !lib->msg_args.empty()) {
    msg_args = lib->msg_args;
  } else if (!delivery.op->inputs.empty()) {
    msg_args = {0};
  }

  BuildCtx ctx{.program = program_,
               .call_graph = call_graph_,
               .options = options_,
               .pointsto = pointsto_,
               .nodes = 0,
               .next_leaf_id = 0,
               .stack = {},
               .fn_chain = {delivery.caller->name()},
               .devirt_crossings = 0,
               .callsite_crossings = 0,
               .memory_crossings = 0,
               .provenance = {}};

  for (const int arg : msg_args) {
    if (arg < 0 ||
        static_cast<std::size_t>(arg) >= delivery.op->inputs.size())
      continue;
    auto root = make_node(ctx, MftNodeKind::Root);
    root->fn = delivery.caller;
    root->op = delivery.op;
    root->var = delivery.op->inputs[static_cast<std::size_t>(arg)];
    root->src_index = arg;
    expand_src(ctx, *delivery.caller, *root, root->var, delivery.op->address,
               arg, 0);
    // expand_src would have added the root's var as a const leaf child when
    // the argument itself is a constant (an MQTT topic literal).
    mft.roots.push_back(std::move(root));
  }
  // Records were appended at leaf creation, so they are already in
  // leaf_id order — the order the report serializes them in.
  mft.provenance = std::move(ctx.provenance);
  g_taint_mfts_built.add();
  if (ctx.nodes >= options_.max_nodes) g_taint_budget_exhausted.add();
  return mft;
}

std::vector<Mft> MftBuilder::build_all() const {
  std::vector<analysis::CallSite> sites;
  for (const std::string& name :
       ir::LibraryModel::instance().names_of_kind(ir::LibKind::MsgDeliver)) {
    for (const analysis::CallSite& site : call_graph_.callsites_of(name))
      sites.push_back(site);
  }
  std::sort(sites.begin(), sites.end(),
            [](const analysis::CallSite& a, const analysis::CallSite& b) {
              return a.op->address < b.op->address;
            });
  std::vector<Mft> out;
  out.reserve(sites.size());
  for (const analysis::CallSite& site : sites) out.push_back(build(site));
  return out;
}

}  // namespace firmres::core
