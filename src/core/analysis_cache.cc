#include "core/analysis_cache.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "support/error.h"
#include "support/hash.h"
#include "support/observability/events.h"
#include "support/observability/metrics.h"
#include "support/strings.h"

namespace firmres::core {

namespace {

namespace fs = std::filesystem;
namespace metrics = support::metrics;
namespace events = support::events;
using support::Json;
using support::JsonArray;
using support::JsonObject;

// On-disk entry format version. Any change to the payload schema or to the
// meaning of a key MUST bump this: version-skewed files load as misses.
constexpr int kCacheVersion = 1;
constexpr const char* kCacheFormat = "firmres-cache";

// Cache traffic counters (Work-kind: lookups are driven by what the corpus
// contains and what the store holds, not by scheduling).
metrics::Counter g_ident_hits("cache.ident_hits", metrics::Kind::Work);
metrics::Counter g_ident_misses("cache.ident_misses", metrics::Kind::Work);
metrics::Counter g_program_hits("cache.program_hits", metrics::Kind::Work);
metrics::Counter g_program_misses("cache.program_misses",
                                  metrics::Kind::Work);
metrics::Counter g_fn_hits("cache.fn_hits", metrics::Kind::Work);
metrics::Counter g_fn_misses("cache.fn_misses", metrics::Kind::Work);
metrics::Counter g_stores("cache.stores", metrics::Kind::Work);
metrics::Counter g_evictions("cache.evictions", metrics::Kind::Work);
metrics::Counter g_load_errors("cache.load_errors", metrics::Kind::Work);

std::string hex_u64(std::uint64_t v) {
  return support::format("0x%016llx", static_cast<unsigned long long>(v));
}

std::uint64_t parse_u64(const std::string& s) {
  if (s.size() < 3 || s[0] != '0' || s[1] != 'x')
    throw support::ParseError("cache payload: bad u64 literal: " + s);
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(s.c_str() + 2, &end, 16);
  if (end == nullptr || *end != '\0')
    throw support::ParseError("cache payload: bad u64 literal: " + s);
  return v;
}

// Checked accessors over an authenticated payload (the payload_hash check
// already rejected corruption, so a shape mismatch here means a foreign or
// hand-edited file — ParseError, caught by the lookup path as a load error).
const Json& req(const Json& obj, const char* key) {
  const Json* v = obj.find(key);
  if (v == nullptr)
    throw support::ParseError(std::string("cache payload: missing key ") +
                              key);
  return *v;
}
std::string req_str(const Json& obj, const char* key) {
  return req(obj, key).as_string();
}
std::uint64_t req_u64(const Json& obj, const char* key) {
  return parse_u64(req(obj, key).as_string());
}
int req_int(const Json& obj, const char* key) {
  return static_cast<int>(req(obj, key).as_number());
}
double req_f64(const Json& obj, const char* key) {
  return req(obj, key).as_number();
}
bool req_bool(const Json& obj, const char* key) {
  return req(obj, key).as_bool();
}

// --- full-fidelity message (de)serialization ---------------------------------
// Distinct from report.cc's analysis_to_json on purpose: the report omits
// internal fields (leaf_id, slice_text, multi_field_formats) that downstream
// consumers of a rehydrated analysis still need. Enums travel as raw ints —
// the payload hash pins the producing version, so symbolic names buy
// nothing. Doubles survive exactly: Json::dump renders non-integers with
// %.17g, which round-trips every finite double bit pattern.

Json provenance_to_json(const FieldProvenance& p) {
  JsonArray visited(p.visited_functions.begin(), p.visited_functions.end());
  JsonArray path(p.construction_path.begin(), p.construction_path.end());
  JsonArray scores;
  for (const double s : p.label_scores) scores.emplace_back(s);
  return Json(JsonObject{
      {"visited_functions", Json(std::move(visited))},
      {"devirt_crossings", Json(p.devirt_crossings)},
      {"callsite_crossings", Json(p.callsite_crossings)},
      {"memory_crossings", Json(p.memory_crossings)},
      {"taint_depth", Json(p.taint_depth)},
      {"termination", Json(p.termination)},
      {"construction_path", Json(std::move(path))},
      {"format_piece", Json(p.format_piece)},
      {"split_delimiter", Json(p.split_delimiter)},
      {"split_score", Json(p.split_score)},
      {"split_pieces", Json(p.split_pieces)},
      {"model", Json(p.model)},
      {"label_scores", Json(std::move(scores))},
      {"margin", Json(p.margin)},
  });
}

FieldProvenance provenance_from_json(const Json& j) {
  FieldProvenance p;
  for (const Json& f : req(j, "visited_functions").as_array())
    p.visited_functions.push_back(f.as_string());
  p.devirt_crossings = req_int(j, "devirt_crossings");
  p.callsite_crossings = req_int(j, "callsite_crossings");
  p.memory_crossings = req_int(j, "memory_crossings");
  p.taint_depth = req_int(j, "taint_depth");
  p.termination = req_str(j, "termination");
  for (const Json& s : req(j, "construction_path").as_array())
    p.construction_path.push_back(s.as_string());
  p.format_piece = req_str(j, "format_piece");
  p.split_delimiter = req_str(j, "split_delimiter");
  p.split_score = req_f64(j, "split_score");
  p.split_pieces = req_int(j, "split_pieces");
  p.model = req_str(j, "model");
  for (const Json& s : req(j, "label_scores").as_array())
    p.label_scores.push_back(s.as_number());
  p.margin = req_f64(j, "margin");
  return p;
}

Json field_to_json(const ReconstructedField& f) {
  return Json(JsonObject{
      {"key", Json(f.key)},
      {"semantics", Json(static_cast<int>(f.semantics))},
      {"source", Json(static_cast<int>(f.source))},
      {"source_detail", Json(f.source_detail)},
      {"const_value", Json(f.const_value)},
      {"slice_text", Json(f.slice_text)},
      {"leaf_id", Json(f.leaf_id)},
      {"hardcoded", Json(f.hardcoded)},
      {"provenance", provenance_to_json(f.provenance)},
  });
}

ReconstructedField field_from_json(const Json& j) {
  ReconstructedField f;
  f.key = req_str(j, "key");
  f.semantics = static_cast<fw::Primitive>(req_int(j, "semantics"));
  f.source = static_cast<FieldValueSource>(req_int(j, "source"));
  f.source_detail = req_str(j, "source_detail");
  f.const_value = req_str(j, "const_value");
  f.slice_text = req_str(j, "slice_text");
  f.leaf_id = req_int(j, "leaf_id");
  f.hardcoded = req_bool(j, "hardcoded");
  f.provenance = provenance_from_json(req(j, "provenance"));
  return f;
}

Json message_to_json(const ReconstructedMessage& m) {
  JsonArray fields;
  for (const ReconstructedField& f : m.fields) fields.push_back(field_to_json(f));
  JsonArray formats(m.multi_field_formats.begin(),
                    m.multi_field_formats.end());
  return Json(JsonObject{
      {"executable", Json(m.executable)},
      {"delivery_address", Json(hex_u64(m.delivery_address))},
      {"delivery_callee", Json(m.delivery_callee)},
      {"endpoint_path", Json(m.endpoint_path)},
      {"host", Json(m.host)},
      {"format", Json(static_cast<int>(m.format))},
      {"fields", Json(std::move(fields))},
      {"multi_field_formats", Json(std::move(formats))},
      {"opaque_terminations", Json(m.opaque_terminations)},
      {"param_terminations", Json(m.param_terminations)},
      {"memory_terminations", Json(m.memory_terminations)},
  });
}

ReconstructedMessage message_from_json(const Json& j) {
  ReconstructedMessage m;
  m.executable = req_str(j, "executable");
  m.delivery_address = req_u64(j, "delivery_address");
  m.delivery_callee = req_str(j, "delivery_callee");
  m.endpoint_path = req_str(j, "endpoint_path");
  m.host = req_str(j, "host");
  m.format = static_cast<fw::WireFormat>(req_int(j, "format"));
  for (const Json& f : req(j, "fields").as_array())
    m.fields.push_back(field_from_json(f));
  for (const Json& s : req(j, "multi_field_formats").as_array())
    m.multi_field_formats.push_back(s.as_string());
  m.opaque_terminations = req_int(j, "opaque_terminations");
  m.param_terminations = req_int(j, "param_terminations");
  m.memory_terminations = req_int(j, "memory_terminations");
  return m;
}

Json decision_to_json(const MftDecision& d) {
  return Json(JsonObject{
      {"delivery_address", Json(hex_u64(d.delivery_address))},
      {"delivery_callee", Json(d.delivery_callee)},
      {"kept", Json(d.kept)},
      {"reason", Json(d.reason)},
  });
}

MftDecision decision_from_json(const Json& j) {
  MftDecision d;
  d.delivery_address = req_u64(j, "delivery_address");
  d.delivery_callee = req_str(j, "delivery_callee");
  d.kept = req_bool(j, "kept");
  d.reason = req_str(j, "reason");
  return d;
}

Json cached_message_to_json(const CachedMessage& m) {
  return Json(JsonObject{
      {"fn", Json(m.fn)},
      {"decision", decision_to_json(m.decision)},
      {"message",
       m.message.has_value() ? message_to_json(*m.message) : Json(nullptr)},
      {"mft_nodes", Json(static_cast<std::int64_t>(m.mft_nodes))},
      {"mft_leaves", Json(static_cast<std::int64_t>(m.mft_leaves))},
  });
}

CachedMessage cached_message_from_json(const Json& j) {
  CachedMessage m;
  m.fn = req_str(j, "fn");
  m.decision = decision_from_json(req(j, "decision"));
  const Json& msg = req(j, "message");
  if (!msg.is_null()) m.message = message_from_json(msg);
  m.mft_nodes = static_cast<std::uint64_t>(req(j, "mft_nodes").as_number());
  m.mft_leaves = static_cast<std::uint64_t>(req(j, "mft_leaves").as_number());
  return m;
}

Json program_to_json(const CachedProgramAnalysis& p) {
  JsonArray devirt;
  for (const CachedProgramAnalysis::DevirtSite& s : p.devirt_sites) {
    devirt.push_back(Json(JsonObject{
        {"caller", Json(s.caller)},
        {"target", Json(s.target)},
        {"address", Json(hex_u64(s.address))},
        {"round", Json(s.round)},
    }));
  }
  JsonArray messages;
  for (const CachedMessage& m : p.messages)
    messages.push_back(cached_message_to_json(m));
  return Json(JsonObject{
      {"indirect_total", Json(static_cast<std::int64_t>(p.indirect_total))},
      {"indirect_resolved",
       Json(static_cast<std::int64_t>(p.indirect_resolved))},
      {"pt_loads_total", Json(static_cast<std::int64_t>(p.pt_loads_total))},
      {"pt_loads_resolved",
       Json(static_cast<std::int64_t>(p.pt_loads_resolved))},
      {"pt_loads_with_stores",
       Json(static_cast<std::int64_t>(p.pt_loads_with_stores))},
      {"pt_stores_total", Json(static_cast<std::int64_t>(p.pt_stores_total))},
      {"pt_stores_never_loaded",
       Json(static_cast<std::int64_t>(p.pt_stores_never_loaded))},
      {"devirt_sites", Json(std::move(devirt))},
      {"messages", Json(std::move(messages))},
  });
}

CachedProgramAnalysis program_from_json(const Json& j) {
  CachedProgramAnalysis p;
  p.indirect_total =
      static_cast<std::uint64_t>(req(j, "indirect_total").as_number());
  p.indirect_resolved =
      static_cast<std::uint64_t>(req(j, "indirect_resolved").as_number());
  p.pt_loads_total =
      static_cast<std::uint64_t>(req(j, "pt_loads_total").as_number());
  p.pt_loads_resolved =
      static_cast<std::uint64_t>(req(j, "pt_loads_resolved").as_number());
  p.pt_loads_with_stores =
      static_cast<std::uint64_t>(req(j, "pt_loads_with_stores").as_number());
  p.pt_stores_total =
      static_cast<std::uint64_t>(req(j, "pt_stores_total").as_number());
  p.pt_stores_never_loaded = static_cast<std::uint64_t>(
      req(j, "pt_stores_never_loaded").as_number());
  for (const Json& s : req(j, "devirt_sites").as_array()) {
    p.devirt_sites.push_back(CachedProgramAnalysis::DevirtSite{
        req_str(s, "caller"), req_str(s, "target"), req_u64(s, "address"),
        req_int(s, "round")});
  }
  for (const Json& m : req(j, "messages").as_array())
    p.messages.push_back(cached_message_from_json(m));
  return p;
}

Json fn_entry_to_json(const CachedFunctionEntry& e) {
  JsonArray deps;
  for (const CachedFunctionEntry::Dep& d : e.deps) {
    deps.push_back(Json(JsonObject{
        {"fn", Json(d.fn)},
        {"ir_hash", Json(hex_u64(d.ir_hash))},
        {"vf_sig", Json(hex_u64(d.vf_sig))},
        {"callers_hash", Json(hex_u64(d.callers_hash))},
        {"pt_sig", Json(hex_u64(d.pt_sig))},
    }));
  }
  JsonArray messages;
  for (const CachedMessage& m : e.messages)
    messages.push_back(cached_message_to_json(m));
  return Json(JsonObject{
      {"fn", Json(e.fn)},
      {"deps", Json(std::move(deps))},
      {"messages", Json(std::move(messages))},
  });
}

CachedFunctionEntry fn_entry_from_json(const Json& j) {
  CachedFunctionEntry e;
  e.fn = req_str(j, "fn");
  for (const Json& d : req(j, "deps").as_array()) {
    e.deps.push_back(CachedFunctionEntry::Dep{
        req_str(d, "fn"), req_u64(d, "ir_hash"), req_u64(d, "vf_sig"),
        req_u64(d, "callers_hash"), req_u64(d, "pt_sig")});
  }
  for (const Json& m : req(j, "messages").as_array())
    e.messages.push_back(cached_message_from_json(m));
  return e;
}

std::string entry_filename(const char* kind, std::uint64_t key) {
  return support::format("%s-%016llx.json", kind,
                         static_cast<unsigned long long>(key));
}

}  // namespace

AnalysisCache::AnalysisCache(Options options) : options_(std::move(options)) {
  FIRMRES_CHECK_MSG(!options_.dir.empty(),
                    "AnalysisCache requires a store directory");
  std::error_code ec;
  fs::create_directories(options_.dir, ec);
  FIRMRES_CHECK_MSG(!ec, "cannot create cache directory " + options_.dir);
}

// --- content hashing ---------------------------------------------------------

namespace {

void hash_varnode(support::Hasher& h, const ir::VarNode& v) {
  h.u8(static_cast<std::uint8_t>(v.space)).u64(v.offset).u64(v.size);
}

}  // namespace

std::uint64_t AnalysisCache::hash_function_ir(const ir::Function& fn) {
  support::Hasher h(0x666e69725f763031ULL);  // "fnir_v01"
  h.str(fn.name()).u64(fn.entry_address()).boolean(fn.is_import());
  h.u64(fn.params().size());
  for (const ir::VarNode& p : fn.params()) hash_varnode(h, p);
  h.u64(fn.blocks().size());
  for (const ir::BasicBlock& b : fn.blocks()) {
    h.u64(static_cast<std::uint64_t>(b.id));
    h.u64(b.successors.size());
    for (const int s : b.successors) h.u64(static_cast<std::uint64_t>(s));
    h.u64(b.ops.size());
    for (const ir::PcodeOp& op : b.ops) {
      h.u64(op.address).u8(static_cast<std::uint8_t>(op.opcode));
      h.boolean(op.output.has_value());
      if (op.output.has_value()) hash_varnode(h, *op.output);
      h.u64(op.inputs.size());
      for (const ir::VarNode& in : op.inputs) hash_varnode(h, in);
      h.str(op.callee);
    }
  }
  // Symbol information feeds the enriched slice rendering the classifier
  // consumes (§IV-C), so a rename alone must invalidate.
  h.u64(fn.var_table().size());
  for (const auto& [var, info] : fn.var_table()) {
    hash_varnode(h, var);
    h.u8(static_cast<std::uint8_t>(info.type)).str(info.name).u64(
        info.node_id);
  }
  return h.digest();
}

std::uint64_t AnalysisCache::hash_data_segment(const ir::Program& program) {
  support::Hasher h(0x646174615f763031ULL);  // "data_v01"
  h.u64(program.data().strings().size());
  for (const auto& [offset, text] : program.data().strings())
    h.u64(offset).str(text);
  return h.digest();
}

std::uint64_t AnalysisCache::hash_program_ir(const ir::Program& program) {
  support::Hasher h(0x70726f675f763031ULL);  // "prog_v01"
  h.str(program.name());
  h.u64(hash_data_segment(program));
  h.u64(program.functions().size());
  for (const ir::Function* fn : program.functions())
    h.u64(hash_function_ir(*fn));
  return h.digest();
}

// --- on-disk store -----------------------------------------------------------

std::optional<Json> AnalysisCache::load_payload(const char* kind,
                                                std::uint64_t key) {
  const fs::path path = fs::path(options_.dir) / entry_filename(kind, key);
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return std::nullopt;  // absent: a clean miss
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  const auto fail = [&]() -> std::optional<Json> {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.load_errors;
    g_load_errors.add();
    return std::nullopt;
  };
  const std::optional<Json> doc = Json::try_parse(text);
  if (!doc.has_value() || !doc->is_object()) return fail();
  const Json* format = doc->find("format");
  const Json* version = doc->find("version");
  const Json* entry_kind = doc->find("kind");
  const Json* entry_key = doc->find("key");
  const Json* payload = doc->find("payload");
  const Json* payload_hash = doc->find("payload_hash");
  if (format == nullptr || !format->is_string() ||
      format->as_string() != kCacheFormat)
    return fail();
  if (version == nullptr || !version->is_number() ||
      static_cast<int>(version->as_number()) != kCacheVersion)
    return fail();
  if (entry_kind == nullptr || !entry_kind->is_string() ||
      entry_kind->as_string() != kind)
    return fail();
  if (entry_key == nullptr || !entry_key->is_string() ||
      entry_key->as_string() != hex_u64(key))
    return fail();
  if (payload == nullptr || payload_hash == nullptr ||
      !payload_hash->is_string())
    return fail();
  // Integrity gate: a flipped bit anywhere in the payload (or in the hash
  // itself) fails here, long before a deserializer could misread it.
  if (payload_hash->as_string() !=
      hex_u64(support::fnv1a64(payload->dump(false))))
    return fail();
  return *payload;
}

void AnalysisCache::store_payload(const char* kind, std::uint64_t key,
                                  const Json& payload) {
  const Json doc(JsonObject{
      {"format", Json(kCacheFormat)},
      {"version", Json(kCacheVersion)},
      {"kind", Json(kind)},
      {"key", Json(hex_u64(key))},
      {"payload", payload},
      {"payload_hash", Json(hex_u64(support::fnv1a64(payload.dump(false))))},
  });
  const std::string text = doc.dump(false);

  // Unique temp + rename: concurrent writers of the same key race to an
  // atomic replace, and readers never observe a partial file.
  static std::atomic<std::uint64_t> temp_seq{0};
  const fs::path dir(options_.dir);
  const fs::path tmp =
      dir / support::format(
                ".tmp-%s-%016llx-%llu", kind,
                static_cast<unsigned long long>(key),
                static_cast<unsigned long long>(
                    temp_seq.fetch_add(1, std::memory_order_relaxed)));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) return;  // unwritable store: degrade to no-op
    out << text;
  }
  std::error_code ec;
  fs::rename(tmp, dir / entry_filename(kind, key), ec);
  if (ec) {
    fs::remove(tmp, ec);
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.stores;
  g_stores.add();
  evict_locked();
}

void AnalysisCache::evict_locked() {
  std::error_code ec;
  std::vector<std::pair<fs::file_time_type, fs::path>> entries;
  for (const fs::directory_entry& e :
       fs::directory_iterator(options_.dir, ec)) {
    if (ec) return;
    const std::string name = e.path().filename().string();
    if (name.size() < 5 || name.substr(name.size() - 5) != ".json") continue;
    std::error_code tec;
    const fs::file_time_type mtime = e.last_write_time(tec);
    if (tec) continue;
    entries.emplace_back(mtime, e.path());
  }
  if (entries.size() <= options_.max_entries) return;
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) {
              return a.first != b.first ? a.first < b.first
                                        : a.second < b.second;
            });
  const std::size_t excess = entries.size() - options_.max_entries;
  for (std::size_t i = 0; i < excess; ++i) {
    std::error_code rec;
    if (fs::remove(entries[i].second, rec) && !rec) {
      ++stats_.evictions;
      g_evictions.add();
    }
  }
}

void AnalysisCache::note_lookup(const char* kind, std::uint64_t key,
                                bool hit) {
  if (!options_.emit_events || !events::enabled()) return;
  events::Event e;
  e.category = "cache";
  e.text = std::string("cache ") + kind + (hit ? " hit" : " miss");
  e.attrs = {{"key", hex_u64(key)}};
  events::emit(std::move(e));
}

// --- tiers -------------------------------------------------------------------

std::optional<bool> AnalysisCache::lookup_ident(std::uint64_t key) {
  std::optional<bool> out;
  try {
    const std::optional<Json> payload = load_payload("ident", key);
    if (payload.has_value()) out = req_bool(*payload, "is_device_cloud");
  } catch (const std::exception&) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.load_errors;
    g_load_errors.add();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (out.has_value()) {
      ++stats_.ident_hits;
      g_ident_hits.add();
    } else {
      ++stats_.ident_misses;
      g_ident_misses.add();
    }
  }
  note_lookup("ident", key, out.has_value());
  return out;
}

void AnalysisCache::store_ident(std::uint64_t key, bool is_device_cloud) {
  store_payload("ident", key,
                Json(JsonObject{{"is_device_cloud", Json(is_device_cloud)}}));
}

std::optional<CachedProgramAnalysis> AnalysisCache::lookup_program(
    std::uint64_t key) {
  std::optional<CachedProgramAnalysis> out;
  try {
    const std::optional<Json> payload = load_payload("program", key);
    if (payload.has_value()) out = program_from_json(*payload);
  } catch (const std::exception&) {
    out.reset();
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.load_errors;
    g_load_errors.add();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (out.has_value()) {
      ++stats_.program_hits;
      g_program_hits.add();
      // A program-tier hit reuses every delivery-bearing function's
      // artifacts, so credit them as fn hits: cache.fn_hits over
      // (fn_hits + fn_misses) stays the per-function hit rate no matter
      // which tier served.
      std::set<std::string> fns;
      for (const CachedMessage& m : out->messages) fns.insert(m.fn);
      stats_.fn_hits += fns.size();
      g_fn_hits.add(fns.size());
    } else {
      ++stats_.program_misses;
      g_program_misses.add();
    }
  }
  note_lookup("program", key, out.has_value());
  return out;
}

void AnalysisCache::store_program(std::uint64_t key,
                                  const CachedProgramAnalysis& value) {
  store_payload("program", key, program_to_json(value));
}

std::optional<CachedFunctionEntry> AnalysisCache::lookup_function(
    std::uint64_t key,
    const std::function<bool(const CachedFunctionEntry::Dep&)>& dep_ok) {
  std::optional<CachedFunctionEntry> out;
  try {
    const std::optional<Json> payload = load_payload("fn", key);
    if (payload.has_value()) out = fn_entry_from_json(*payload);
  } catch (const std::exception&) {
    out.reset();
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.load_errors;
    g_load_errors.add();
  }
  if (out.has_value() && dep_ok) {
    for (const CachedFunctionEntry::Dep& dep : out->deps) {
      if (dep_ok(dep)) continue;
      out.reset();  // a recorded dependency drifted: the entry is stale
      break;
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (out.has_value()) {
      ++stats_.fn_hits;
      g_fn_hits.add();
    } else {
      ++stats_.fn_misses;
      g_fn_misses.add();
    }
  }
  note_lookup("fn", key, out.has_value());
  return out;
}

void AnalysisCache::store_function(std::uint64_t key,
                                   const CachedFunctionEntry& value) {
  store_payload("fn", key, fn_entry_to_json(value));
}

std::vector<std::pair<std::uint64_t, CachedFunctionEntry>>
AnalysisCache::function_entries() {
  std::vector<std::pair<std::uint64_t, CachedFunctionEntry>> out;
  std::error_code ec;
  for (const fs::directory_entry& e :
       fs::directory_iterator(options_.dir, ec)) {
    if (ec) break;
    const std::string name = e.path().filename().string();
    if (name.rfind("fn-", 0) != 0 || name.size() != 3 + 16 + 5) continue;
    std::uint64_t key = 0;
    try {
      key = parse_u64("0x" + name.substr(3, 16));
    } catch (const std::exception&) {
      continue;
    }
    try {
      const std::optional<Json> payload = load_payload("fn", key);
      if (payload.has_value())
        out.emplace_back(key, fn_entry_from_json(*payload));
    } catch (const std::exception&) {
    }
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

AnalysisCache::Stats AnalysisCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace firmres::core
