#include "core/pipeline.h"

#include <chrono>
#include <memory>

#include "analysis/valueflow/valueflow.h"
#include "analysis/verify/verifier.h"
#include "core/taint.h"
#include "support/logging.h"
#include "support/observability/events.h"
#include "support/observability/metrics.h"
#include "support/observability/trace.h"
#include "support/strings.h"
#include "support/timing.h"

namespace firmres::core {

namespace {

namespace metrics = support::metrics;

// Per-phase latency histograms (microseconds) — what bench_perf_phases
// reads back for its phase-split summary. Runtime-kind: excluded from the
// deterministic metrics dump.
metrics::Histogram g_phase_pinpoint_us("phase.pinpoint_us",
                                       metrics::Kind::Runtime);
metrics::Histogram g_phase_fields_us("phase.fields_us",
                                     metrics::Kind::Runtime);
metrics::Histogram g_phase_semantics_us("phase.semantics_us",
                                        metrics::Kind::Runtime);
metrics::Histogram g_phase_concat_us("phase.concat_us",
                                     metrics::Kind::Runtime);
metrics::Histogram g_phase_check_us("phase.check_us", metrics::Kind::Runtime);

// Work-kind corpus totals: deterministic at any jobs level.
metrics::Counter g_devices_analyzed("pipeline.devices_analyzed",
                                    metrics::Kind::Work);
metrics::Counter g_messages("pipeline.messages_reconstructed",
                            metrics::Kind::Work);
metrics::Counter g_lan_discarded("pipeline.lan_discarded",
                                 metrics::Kind::Work);
metrics::Counter g_flaw_alarms("pipeline.flaw_alarms", metrics::Kind::Work);
metrics::Histogram g_mft_nodes("taint.mft_nodes", metrics::Kind::Work);
metrics::Histogram g_mft_leaves("taint.mft_leaves", metrics::Kind::Work);

std::uint64_t to_us(double seconds) {
  return seconds <= 0.0 ? 0 : static_cast<std::uint64_t>(seconds * 1e6);
}

class PhaseTimer {
 public:
  explicit PhaseTimer(double& slot)
      : slot_(slot), start_(std::chrono::steady_clock::now()) {}
  ~PhaseTimer() {
    slot_ += std::chrono::duration<double>(
                 std::chrono::steady_clock::now() - start_)
                 .count();
  }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  double& slot_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

namespace {

/// Accumulates the analyzing thread's CPU time into a PhaseTimings slot.
class CpuTimer {
 public:
  explicit CpuTimer(double& slot)
      : slot_(slot), start_(support::thread_cpu_seconds()) {}
  ~CpuTimer() { slot_ += support::thread_cpu_seconds() - start_; }
  CpuTimer(const CpuTimer&) = delete;
  CpuTimer& operator=(const CpuTimer&) = delete;

 private:
  double& slot_;
  double start_;
};

namespace events = support::events;

/// Decision events for one reconstructed message (no-ops while the event
/// log is disabled): per-field taint termination, §IV-C format split, and
/// classifier verdict — the same records the report's provenance block
/// serializes, in event form for --events-out consumers.
void emit_message_events(int device_id, const ReconstructedMessage& msg) {
  if (!events::enabled()) return;
  const std::string message_key = support::format(
      "0x%llx", static_cast<unsigned long long>(msg.delivery_address));
  for (const ReconstructedField& f : msg.fields) {
    const FieldProvenance& prov = f.provenance;
    const std::string field_key =
        f.key.empty() ? "leaf:" + std::to_string(f.leaf_id) : f.key;
    {
      events::Event e;
      e.category = "taint";
      e.device_id = device_id;
      e.message_key = message_key;
      e.field_key = field_key;
      e.text = "taint walk terminated: " + prov.termination;
      e.attrs = {{"functions", support::join(prov.visited_functions, ">")},
                 {"devirt_crossings",
                  std::to_string(prov.devirt_crossings)},
                 {"callsite_crossings",
                  std::to_string(prov.callsite_crossings)}};
      events::emit(std::move(e));
    }
    if (prov.split_pieces > 0) {
      events::Event e;
      e.category = "slices";
      e.device_id = device_id;
      e.message_key = message_key;
      e.field_key = field_key;
      e.text = "format split: piece \"" + prov.format_piece + "\"";
      e.attrs = {{"delimiter", prov.split_delimiter},
                 {"pieces", std::to_string(prov.split_pieces)},
                 {"score", support::format("%.4f", prov.split_score)}};
      events::emit(std::move(e));
    }
    {
      events::Event e;
      e.category = "semantics";
      e.device_id = device_id;
      e.message_key = message_key;
      e.field_key = field_key;
      e.text = "classified " + std::string(fw::primitive_name(f.semantics));
      e.attrs = {{"model", prov.model},
                 {"margin", support::format("%.4f", prov.margin)}};
      events::emit(std::move(e));
    }
  }
}

void emit_decision_event(int device_id, const MftDecision& decision) {
  if (!events::enabled()) return;
  events::Event e;
  e.severity =
      decision.kept ? events::Severity::Info : events::Severity::Warn;
  e.category = "concat";
  e.device_id = device_id;
  e.message_key = support::format(
      "0x%llx", static_cast<unsigned long long>(decision.delivery_address));
  e.text = decision.kept ? "MFT kept: " + decision.reason
                         : "MFT dropped: " + decision.reason;
  e.attrs = {{"delivery_callee", decision.delivery_callee}};
  events::emit(std::move(e));
}

}  // namespace

DeviceAnalysis Pipeline::analyze(const fw::FirmwareImage& image,
                                 support::ThreadPool* pool) const {
  FIRMRES_SPAN_DEVICE("pipeline.analyze", "pipeline", image.profile.id);
  DeviceAnalysis out;
  out.device_id = image.profile.id;
  const CpuTimer cpu_timer(out.timings.cpu_total_s);

  // --- Phase 0 (opt-in): reject malformed programs up front ----------------
  // A lint error deep in one executable would otherwise surface as a
  // FIRMRES_CHECK abort inside some analysis with no indication of which
  // function or op is broken.
  if (options_.lint_gate) {
    const analysis::verify::Verifier verifier;
    std::string failures;
    for (const fw::FirmwareFile& file : image.files) {
      if (file.kind != fw::FirmwareFile::Kind::Executable ||
          file.program == nullptr)
        continue;
      const analysis::verify::LintReport report =
          verifier.run(*file.program, pool);
      if (report.errors() == 0) continue;
      if (!failures.empty()) failures += "; ";
      failures += file.path + ": " + analysis::verify::gate_message(report);
    }
    if (!failures.empty()) throw analysis::verify::VerifyError(failures);
  }

  // --- Phase 1: pinpoint device-cloud executables (§IV-A) ------------------
  std::vector<const ir::Program*> device_cloud;
  std::uint64_t executables_scanned = 0;
  {
    FIRMRES_SPAN_DEVICE("phase.pinpoint", "pipeline", image.profile.id);
    PhaseTimer timer(out.timings.pinpoint_s);
    const ExecutableIdentifier identifier(options_.identifier);
    for (const fw::FirmwareFile& file : image.files) {
      if (file.kind != fw::FirmwareFile::Kind::Executable ||
          file.program == nullptr)
        continue;
      ++executables_scanned;
      const ExecIdentification ident = identifier.analyze(*file.program);
      if (ident.is_device_cloud) {
        device_cloud.push_back(file.program.get());
        if (out.device_cloud_executable.empty())
          out.device_cloud_executable = file.path;
      }
    }
  }
  // Fills the per-device metrics block (fixed emission order — the report
  // is byte-compared across job counts) and feeds the corpus-level
  // registry. Called on every exit path.
  std::uint64_t mft_count = 0, mft_nodes = 0, mft_leaves = 0;
  const auto finalize = [&] {
    out.metrics = {
        {"pinpoint.executables_scanned", executables_scanned},
        {"pinpoint.device_cloud_programs", device_cloud.size()},
        {"taint.mft_count", mft_count},
        {"taint.mft_nodes", mft_nodes},
        {"taint.mft_leaves", mft_leaves},
        {"valueflow.indirect_total",
         static_cast<std::uint64_t>(out.indirect_calls_total)},
        {"valueflow.indirect_resolved",
         static_cast<std::uint64_t>(out.indirect_calls_resolved)},
        {"semantics.messages_reconstructed", out.messages.size()},
        {"concat.lan_discarded",
         static_cast<std::uint64_t>(out.discarded_lan)},
        {"check.flaw_alarms", out.flaws.size()},
    };
    g_devices_analyzed.add();
    g_messages.add(out.messages.size());
    g_lan_discarded.add(static_cast<std::uint64_t>(out.discarded_lan));
    g_flaw_alarms.add(out.flaws.size());
    g_phase_pinpoint_us.observe(to_us(out.timings.pinpoint_s));
    g_phase_fields_us.observe(to_us(out.timings.fields_s));
    g_phase_semantics_us.observe(to_us(out.timings.semantics_s));
    g_phase_concat_us.observe(to_us(out.timings.concat_s));
    g_phase_check_us.observe(to_us(out.timings.check_s));
  };

  if (device_cloud.empty()) {
    FIRMRES_LOG(Info) << "device " << image.profile.id
                      << ": no device-cloud executable identified";
    finalize();
    return out;
  }

  // --- Phase 2: message-field identification via backward taint (§IV-B) ----
  // Each device-cloud program's MFTs are independent; with a pool they are
  // built concurrently, then concatenated in program order so the result is
  // identical to the sequential loop. The per-program value-flow solution
  // devirtualizes CallInd edges for the taint walks and stays alive through
  // Phases 3/4 so slice generation can recover non-literal format operands.
  struct ProgramWork {
    std::unique_ptr<analysis::ValueFlow> valueflow;
    std::vector<Mft> mfts;
  };
  std::vector<ProgramWork> per_program(device_cloud.size());
  {
    FIRMRES_SPAN_DEVICE("phase.fields", "pipeline", image.profile.id);
    PhaseTimer timer(out.timings.fields_s);
    const auto build_program = [&](std::size_t i, support::ThreadPool* vp) {
      const ir::Program& program = *device_cloud[i];
      auto vf = std::make_unique<analysis::ValueFlow>(program, vp);
      const analysis::CallGraph cg(program, *vf);
      const MftBuilder builder(program, cg, options_.taint);
      per_program[i].mfts = builder.build_all();
      per_program[i].valueflow = std::move(vf);
    };
    if (pool != nullptr && device_cloud.size() > 1) {
      // Workers solve their program's value flow sequentially — the outer
      // fan-out already saturates the pool.
      support::parallel_for(*pool, device_cloud.size(),
                            [&](std::size_t i) { build_program(i, nullptr); });
    } else {
      for (std::size_t i = 0; i < device_cloud.size(); ++i)
        build_program(i, pool);
    }
    for (const ProgramWork& work : per_program) {
      const analysis::ValueFlow::Stats stats = work.valueflow->stats();
      out.indirect_calls_total += stats.indirect_total;
      out.indirect_calls_resolved += stats.indirect_resolved;
      if (events::enabled()) {
        // Fold provenance for every devirtualized site the taint walks and
        // the call graph will rely on.
        for (const analysis::ValueFlow::IndirectSite& site :
             work.valueflow->indirect_sites()) {
          if (site.target == nullptr) continue;
          events::Event e;
          e.category = "valueflow";
          e.device_id = out.device_id;
          e.text = "devirtualized CALLIND " + site.caller->name() + " -> " +
                   site.target->name();
          e.attrs = {{"address",
                      support::format("0x%llx",
                                      static_cast<unsigned long long>(
                                          site.op->address))},
                     {"round", std::to_string(site.resolved_round)}};
          events::emit(std::move(e));
        }
      }
      for (const Mft& mft : work.mfts) {
        ++mft_count;
        mft_nodes += mft.node_count();
        mft_leaves += mft.leaf_count();
        g_mft_nodes.observe(mft.node_count());
        g_mft_leaves.observe(mft.leaf_count());
      }
    }
  }

  // --- Phases 3+4: semantics recovery & field concatenation (§IV-C/D) ------
  // The Reconstructor interleaves classification (per slice) with grouping
  // and ordering; we attribute its time to the two phases by a second pass
  // below. Classification dominates, so time it directly per message.
  {
    FIRMRES_SPAN_DEVICE("phase.reconstruct", "pipeline", image.profile.id);
    const Reconstructor reconstructor(model_);
    for (const ProgramWork& work : per_program) {
      for (const Mft& mft : work.mfts) {
        std::optional<ReconstructedMessage> msg;
        MftDecision decision;
        {
          PhaseTimer timer(out.timings.semantics_s);
          msg = reconstructor.reconstruct_one(mft, out.device_cloud_executable,
                                              work.valueflow.get(), &decision);
        }
        PhaseTimer timer(out.timings.concat_s);
        emit_decision_event(out.device_id, decision);
        out.mft_decisions.push_back(std::move(decision));
        if (msg.has_value()) {
          out.opaque_terminations += msg->opaque_terminations;
          out.param_terminations += msg->param_terminations;
          emit_message_events(out.device_id, *msg);
          out.messages.push_back(std::move(*msg));
        } else {
          ++out.discarded_lan;
        }
      }
    }
  }

  // --- Phase 5: message form check (§IV-E) ----------------------------------
  {
    FIRMRES_SPAN_DEVICE("phase.check", "pipeline", image.profile.id);
    PhaseTimer timer(out.timings.check_s);
    std::vector<std::string> files;
    for (const fw::FirmwareFile& f : image.files) files.push_back(f.path);
    out.flaws = FormChecker().check(out.messages, files);
  }
  finalize();
  return out;
}

}  // namespace firmres::core
