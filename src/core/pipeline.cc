#include "core/pipeline.h"

#include <chrono>

#include "core/taint.h"
#include "support/logging.h"

namespace firmres::core {

namespace {

class PhaseTimer {
 public:
  explicit PhaseTimer(double& slot)
      : slot_(slot), start_(std::chrono::steady_clock::now()) {}
  ~PhaseTimer() {
    slot_ += std::chrono::duration<double>(
                 std::chrono::steady_clock::now() - start_)
                 .count();
  }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  double& slot_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

DeviceAnalysis Pipeline::analyze(const fw::FirmwareImage& image) const {
  DeviceAnalysis out;
  out.device_id = image.profile.id;

  // --- Phase 1: pinpoint device-cloud executables (§IV-A) ------------------
  std::vector<const ir::Program*> device_cloud;
  {
    PhaseTimer timer(out.timings.pinpoint_s);
    const ExecutableIdentifier identifier(options_.identifier);
    for (const fw::FirmwareFile& file : image.files) {
      if (file.kind != fw::FirmwareFile::Kind::Executable ||
          file.program == nullptr)
        continue;
      const ExecIdentification ident = identifier.analyze(*file.program);
      if (ident.is_device_cloud) {
        device_cloud.push_back(file.program.get());
        if (out.device_cloud_executable.empty())
          out.device_cloud_executable = file.path;
      }
    }
  }
  if (device_cloud.empty()) {
    FIRMRES_LOG(Info) << "device " << image.profile.id
                      << ": no device-cloud executable identified";
    return out;
  }

  // --- Phase 2: message-field identification via backward taint (§IV-B) ----
  std::vector<Mft> mfts;
  {
    PhaseTimer timer(out.timings.fields_s);
    for (const ir::Program* program : device_cloud) {
      const analysis::CallGraph cg(*program);
      const MftBuilder builder(*program, cg, options_.taint);
      for (Mft& mft : builder.build_all()) mfts.push_back(std::move(mft));
    }
  }

  // --- Phases 3+4: semantics recovery & field concatenation (§IV-C/D) ------
  // The Reconstructor interleaves classification (per slice) with grouping
  // and ordering; we attribute its time to the two phases by a second pass
  // below. Classification dominates, so time it directly per message.
  {
    const Reconstructor reconstructor(model_);
    for (const Mft& mft : mfts) {
      std::optional<ReconstructedMessage> msg;
      {
        PhaseTimer timer(out.timings.semantics_s);
        msg = reconstructor.reconstruct_one(mft,
                                            out.device_cloud_executable);
      }
      PhaseTimer timer(out.timings.concat_s);
      if (msg.has_value())
        out.messages.push_back(std::move(*msg));
      else
        ++out.discarded_lan;
    }
  }

  // --- Phase 5: message form check (§IV-E) ----------------------------------
  {
    PhaseTimer timer(out.timings.check_s);
    std::vector<std::string> files;
    for (const fw::FirmwareFile& f : image.files) files.push_back(f.path);
    out.flaws = FormChecker().check(out.messages, files);
  }
  return out;
}

}  // namespace firmres::core
