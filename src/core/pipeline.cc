#include "core/pipeline.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <set>

#include "analysis/pointsto/pointsto.h"
#include "analysis/valueflow/valueflow.h"
#include "analysis/verify/verifier.h"
#include "core/analysis_cache.h"
#include "core/taint.h"
#include "ir/library.h"
#include "support/hash.h"
#include "support/logging.h"
#include "support/observability/events.h"
#include "support/observability/metrics.h"
#include "support/observability/trace.h"
#include "support/strings.h"
#include "support/timing.h"

namespace firmres::core {

namespace {

namespace metrics = support::metrics;

// Per-phase latency histograms (microseconds) — what bench_perf_phases
// reads back for its phase-split summary. Runtime-kind: excluded from the
// deterministic metrics dump.
metrics::Histogram g_phase_pinpoint_us("phase.pinpoint_us",
                                       metrics::Kind::Runtime);
metrics::Histogram g_phase_fields_us("phase.fields_us",
                                     metrics::Kind::Runtime);
metrics::Histogram g_phase_semantics_us("phase.semantics_us",
                                        metrics::Kind::Runtime);
metrics::Histogram g_phase_concat_us("phase.concat_us",
                                     metrics::Kind::Runtime);
metrics::Histogram g_phase_check_us("phase.check_us", metrics::Kind::Runtime);

// Work-kind corpus totals: deterministic at any jobs level.
metrics::Counter g_devices_analyzed("pipeline.devices_analyzed",
                                    metrics::Kind::Work);
metrics::Counter g_messages("pipeline.messages_reconstructed",
                            metrics::Kind::Work);
metrics::Counter g_lan_discarded("pipeline.lan_discarded",
                                 metrics::Kind::Work);
metrics::Counter g_flaw_alarms("pipeline.flaw_alarms", metrics::Kind::Work);
metrics::Histogram g_mft_nodes("taint.mft_nodes", metrics::Kind::Work);
metrics::Histogram g_mft_leaves("taint.mft_leaves", metrics::Kind::Work);

std::uint64_t to_us(double seconds) {
  return seconds <= 0.0 ? 0 : static_cast<std::uint64_t>(seconds * 1e6);
}

class PhaseTimer {
 public:
  explicit PhaseTimer(double& slot)
      : slot_(slot), start_(std::chrono::steady_clock::now()) {}
  ~PhaseTimer() {
    slot_ += std::chrono::duration<double>(
                 std::chrono::steady_clock::now() - start_)
                 .count();
  }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  double& slot_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

namespace {

/// Accumulates the analyzing thread's CPU time into a PhaseTimings slot.
class CpuTimer {
 public:
  explicit CpuTimer(double& slot)
      : slot_(slot), start_(support::thread_cpu_seconds()) {}
  ~CpuTimer() { slot_ += support::thread_cpu_seconds() - start_; }
  CpuTimer(const CpuTimer&) = delete;
  CpuTimer& operator=(const CpuTimer&) = delete;

 private:
  double& slot_;
  double start_;
};

namespace events = support::events;

/// Decision events for one reconstructed message (no-ops while the event
/// log is disabled): per-field taint termination, §IV-C format split, and
/// classifier verdict — the same records the report's provenance block
/// serializes, in event form for --events-out consumers.
void emit_message_events(int device_id, const ReconstructedMessage& msg) {
  if (!events::enabled()) return;
  const std::string message_key = support::format(
      "0x%llx", static_cast<unsigned long long>(msg.delivery_address));
  for (const ReconstructedField& f : msg.fields) {
    const FieldProvenance& prov = f.provenance;
    const std::string field_key =
        f.key.empty() ? "leaf:" + std::to_string(f.leaf_id) : f.key;
    {
      events::Event e;
      e.category = "taint";
      e.device_id = device_id;
      e.message_key = message_key;
      e.field_key = field_key;
      e.text = "taint walk terminated: " + prov.termination;
      e.attrs = {{"functions", support::join(prov.visited_functions, ">")},
                 {"devirt_crossings",
                  std::to_string(prov.devirt_crossings)},
                 {"callsite_crossings",
                  std::to_string(prov.callsite_crossings)}};
      events::emit(std::move(e));
    }
    if (prov.split_pieces > 0) {
      events::Event e;
      e.category = "slices";
      e.device_id = device_id;
      e.message_key = message_key;
      e.field_key = field_key;
      e.text = "format split: piece \"" + prov.format_piece + "\"";
      e.attrs = {{"delimiter", prov.split_delimiter},
                 {"pieces", std::to_string(prov.split_pieces)},
                 {"score", support::format("%.4f", prov.split_score)}};
      events::emit(std::move(e));
    }
    {
      events::Event e;
      e.category = "semantics";
      e.device_id = device_id;
      e.message_key = message_key;
      e.field_key = field_key;
      e.text = "classified " + std::string(fw::primitive_name(f.semantics));
      e.attrs = {{"model", prov.model},
                 {"margin", support::format("%.4f", prov.margin)}};
      events::emit(std::move(e));
    }
  }
}

void emit_decision_event(int device_id, const MftDecision& decision) {
  if (!events::enabled()) return;
  events::Event e;
  e.severity =
      decision.kept ? events::Severity::Info : events::Severity::Warn;
  e.category = "concat";
  e.device_id = device_id;
  e.message_key = support::format(
      "0x%llx", static_cast<unsigned long long>(decision.delivery_address));
  e.text = decision.kept ? "MFT kept: " + decision.reason
                         : "MFT dropped: " + decision.reason;
  e.attrs = {{"delivery_callee", decision.delivery_callee}};
  events::emit(std::move(e));
}

/// Fold-provenance event for one devirtualized CallInd site. Byte-for-byte
/// the record the cold path emits, whether the site came from a live
/// ValueFlow solve or a rehydrated cache entry.
void emit_devirt_event(int device_id,
                       const CachedProgramAnalysis::DevirtSite& site) {
  events::Event e;
  e.category = "valueflow";
  e.device_id = device_id;
  e.text = "devirtualized CALLIND " + site.caller + " -> " + site.target;
  e.attrs = {{"address",
              support::format("0x%llx",
                              static_cast<unsigned long long>(site.address))},
             {"round", std::to_string(site.round)}};
  events::emit(std::move(e));
}

/// Hash of a function's resolved-caller set. The §IV-B walk ascends from a
/// parameter through *every* callsite of the containing function, so a new
/// caller appearing anywhere in the program changes the walk even though no
/// visited function's own IR did — this hash is the cache dep that catches
/// that.
std::uint64_t callers_hash(const analysis::CallGraph& cg,
                           const std::string& fn_name) {
  support::Hasher h(0x63616c6c5f763031ULL);  // "call_v01"
  const std::vector<analysis::CallSite> sites =
      cg.resolved_callsites_of(fn_name);
  h.u64(sites.size());
  for (const analysis::CallSite& s : sites)
    h.str(s.caller->name()).u64(s.op->address).u64(s.arg_offset);
  return h.digest();
}

}  // namespace

DeviceAnalysis Pipeline::analyze(const fw::FirmwareImage& image,
                                 support::ThreadPool* pool) const {
  FIRMRES_SPAN_DEVICE("pipeline.analyze", "pipeline", image.profile.id);
  DeviceAnalysis out;
  out.device_id = image.profile.id;
  const CpuTimer cpu_timer(out.timings.cpu_total_s);

  // --- Phase 0 (opt-in): reject malformed programs up front ----------------
  // A lint error deep in one executable would otherwise surface as a
  // FIRMRES_CHECK abort inside some analysis with no indication of which
  // function or op is broken.
  if (options_.lint_gate) {
    const analysis::verify::Verifier verifier;
    std::string failures;
    for (const fw::FirmwareFile& file : image.files) {
      if (file.kind != fw::FirmwareFile::Kind::Executable ||
          file.program == nullptr)
        continue;
      const analysis::verify::LintReport report =
          verifier.run(*file.program, pool);
      if (report.errors() == 0) continue;
      if (!failures.empty()) failures += "; ";
      failures += file.path + ": " + analysis::verify::gate_message(report);
    }
    if (!failures.empty()) throw analysis::verify::VerifyError(failures);
  }

  // --- Component registry matching (docs/COMPONENTS.md) --------------------
  // Sequential, file order, so the inventory and "components" events are
  // deterministic at any jobs level. The products feed the later phases:
  // certified substitutions skip per-function value-flow solves in Phases
  // 1-2, branchless certification pins P_f contributions in Phase 1, and
  // the matched-function labels tag taint provenance post-hoc — none of
  // which changes any pre-existing report byte.
  std::map<const ir::Function*, analysis::ValueFlow::Substitution>
      registry_subs;
  std::set<const ir::Function*> registry_branchless;
  std::map<std::string, std::string> component_labels;  ///< fn name → label
  if (options_.registry != nullptr) {
    FIRMRES_SPAN_DEVICE("phase.components", "pipeline", image.profile.id);
    PhaseTimer timer(out.timings.pinpoint_s);
    const analysis::components::LibraryRegistry& registry =
        *options_.registry;
    std::vector<analysis::components::MatchResult> results;
    for (const fw::FirmwareFile& file : image.files) {
      if (file.kind != fw::FirmwareFile::Kind::Executable ||
          file.program == nullptr)
        continue;
      results.push_back(
          analysis::components::match_program(*file.program, registry));
    }
    std::vector<const analysis::components::MatchResult*> views;
    for (const analysis::components::MatchResult& r : results)
      views.push_back(&r);
    out.components =
        analysis::components::component_inventory(registry, views);
    for (const analysis::components::MatchResult& r : results) {
      registry_subs.insert(r.substitutions.begin(), r.substitutions.end());
      registry_branchless.insert(r.branchless.begin(), r.branchless.end());
      for (const analysis::components::FunctionMatch& m : r.matches) {
        std::string label = m.registry_function + " [";
        for (std::size_t k = 0; k < m.refs.size(); ++k) {
          const analysis::components::RegistryLibrary& lib =
              registry.libraries()[m.refs[k].library];
          if (k > 0) label += ", ";
          label += lib.name + " " + lib.version;
        }
        label += "]";
        const auto [it, inserted] =
            component_labels.emplace(m.fn->name(), std::move(label));
        if (events::enabled()) {
          events::Event e;
          e.category = "components";
          e.device_id = out.device_id;
          e.text = "registry match: " + m.fn->name() + " -> " + it->second;
          e.attrs = {{"fingerprint",
                      support::format("%016llx",
                                      static_cast<unsigned long long>(
                                          m.fingerprint))},
                     {"substitutable", m.substitutable ? "yes" : "no"}};
          if (!m.detail.empty()) e.attrs.push_back({"detail", m.detail});
          events::emit(std::move(e));
        }
      }
    }
    if (events::enabled()) {
      for (const analysis::components::ComponentHit& hit : out.components) {
        events::Event e;
        e.severity =
            hit.risky ? events::Severity::Warn : events::Severity::Info;
        e.category = "components";
        e.device_id = out.device_id;
        e.text = support::format(
            "component identified: %s %s (%zu/%zu functions)",
            hit.name.c_str(), hit.version.c_str(), hit.matched_functions,
            hit.total_functions);
        e.attrs = {{"risky", hit.risky ? "yes" : "no"},
                   {"version_ambiguous",
                    hit.version_ambiguous ? "yes" : "no"}};
        if (hit.risky) e.attrs.push_back({"risk_note", hit.risk_note});
        events::emit(std::move(e));
      }
    }
  }

  // --- Phase 1: pinpoint device-cloud executables (§IV-A) ------------------
  AnalysisCache* cache = options_.cache;
  std::vector<const ir::Program*> device_cloud;
  std::vector<std::uint64_t> program_hashes;  ///< parallel; cache path only
  std::uint64_t executables_scanned = 0;
  {
    FIRMRES_SPAN_DEVICE("phase.pinpoint", "pipeline", image.profile.id);
    PhaseTimer timer(out.timings.pinpoint_s);
    // Registry products thread into the §IV-A solves; they change no
    // verdict (substitution is byte-identical), so ident cache keys need
    // not cover them.
    ExecutableIdentifier::Options ident_options = options_.identifier;
    if (options_.registry != nullptr) {
      ident_options.substitutions = &registry_subs;
      ident_options.registry_branchless = &registry_branchless;
    }
    const ExecutableIdentifier identifier(ident_options);
    std::uint64_t ident_salt = 0;
    if (cache != nullptr) {
      support::Hasher h(0x6964656e745f7631ULL);  // "ident_v1"
      h.f64(options_.identifier.pf_threshold)
          .boolean(options_.identifier.require_async)
          .boolean(options_.identifier.use_pf_scoring)
          .boolean(options_.identifier.devirtualize);
      ident_salt = h.digest();
    }
    for (const fw::FirmwareFile& file : image.files) {
      if (file.kind != fw::FirmwareFile::Kind::Executable ||
          file.program == nullptr)
        continue;
      ++executables_scanned;
      bool is_device_cloud = false;
      std::uint64_t program_hash = 0;
      if (cache != nullptr) {
        program_hash = AnalysisCache::hash_program_ir(*file.program);
        const std::uint64_t key = support::Hasher(0x6964656e742e6b79ULL)
                                      .u64(ident_salt)
                                      .u64(program_hash)
                                      .digest();
        const std::optional<bool> hit = cache->lookup_ident(key);
        if (hit.has_value()) {
          is_device_cloud = *hit;
        } else {
          is_device_cloud = identifier.analyze(*file.program).is_device_cloud;
          cache->store_ident(key, is_device_cloud);
        }
      } else {
        is_device_cloud = identifier.analyze(*file.program).is_device_cloud;
      }
      if (is_device_cloud) {
        device_cloud.push_back(file.program.get());
        program_hashes.push_back(program_hash);
        if (out.device_cloud_executable.empty())
          out.device_cloud_executable = file.path;
      }
    }
  }
  // Fills the per-device metrics block (fixed emission order — the report
  // is byte-compared across job counts) and feeds the corpus-level
  // registry. Called on every exit path.
  std::uint64_t mft_count = 0, mft_nodes = 0, mft_leaves = 0;
  const auto finalize = [&] {
    out.metrics = {
        {"pinpoint.executables_scanned", executables_scanned},
        {"pinpoint.device_cloud_programs", device_cloud.size()},
        {"taint.mft_count", mft_count},
        {"taint.mft_nodes", mft_nodes},
        {"taint.mft_leaves", mft_leaves},
        {"valueflow.indirect_total",
         static_cast<std::uint64_t>(out.indirect_calls_total)},
        {"valueflow.indirect_resolved",
         static_cast<std::uint64_t>(out.indirect_calls_resolved)},
        {"semantics.messages_reconstructed", out.messages.size()},
        {"concat.lan_discarded",
         static_cast<std::uint64_t>(out.discarded_lan)},
        {"check.flaw_alarms", out.flaws.size()},
    };
    g_devices_analyzed.add();
    g_messages.add(out.messages.size());
    g_lan_discarded.add(static_cast<std::uint64_t>(out.discarded_lan));
    g_flaw_alarms.add(out.flaws.size());
    g_phase_pinpoint_us.observe(to_us(out.timings.pinpoint_s));
    g_phase_fields_us.observe(to_us(out.timings.fields_s));
    g_phase_semantics_us.observe(to_us(out.timings.semantics_s));
    g_phase_concat_us.observe(to_us(out.timings.concat_s));
    g_phase_check_us.observe(to_us(out.timings.check_s));
  };

  if (device_cloud.empty()) {
    FIRMRES_LOG(Info) << "device " << image.profile.id
                      << ": no device-cloud executable identified";
    finalize();
    return out;
  }

  // Everything besides the IR that shapes the Phase 2-4 product: taint
  // budgets, the classifier identity, and the executable path embedded in
  // every reconstructed message.
  std::uint64_t analysis_salt = 0;
  if (cache != nullptr) {
    support::Hasher h(0x616e616c5f763031ULL);  // "anal_v01"
    h.u64(static_cast<std::uint64_t>(options_.taint.max_depth))
        .u64(options_.taint.max_nodes)
        .u64(static_cast<std::uint64_t>(options_.taint.max_callsites))
        .boolean(options_.pointsto)
        .str(model_.name())
        .str(out.device_cloud_executable);
    analysis_salt = h.digest();
  }

  // --- Phase 2: message-field identification via backward taint (§IV-B) ----
  // Each device-cloud program's MFTs are independent; with a pool they are
  // built concurrently, then concatenated in program order so the result is
  // identical to the sequential loop. The per-program value-flow solution
  // devirtualizes CallInd edges for the taint walks and stays alive through
  // Phases 3/4 so slice generation can recover non-literal format operands.
  //
  // With a cache, each program first tries its program-tier entry (a hit
  // skips ValueFlow, taint, and reconstruction outright); on a miss the
  // solve runs and each delivery-bearing *function* tries its fn-tier
  // entry, validated against the live solve through the recorded deps.
  struct FnGroup {
    const ir::Function* fn = nullptr;
    std::uint64_t key = 0;
    bool from_cache = false;
    std::vector<CachedMessage> cached;  ///< hit: fn's messages, site order
    std::set<std::string> dep_names;    ///< miss: visited-function union
    std::vector<CachedFunctionEntry::Dep> deps;   ///< miss: recorded deps
    std::vector<CachedMessage> fresh;   ///< miss: filled in Phases 3+4
  };
  struct SiteOutcome {
    std::optional<CachedMessage> ready;  ///< fn-tier hit
    std::optional<Mft> mft;              ///< needs reconstruction
    int group = -1;                      ///< FnGroup index (cache path only)
  };
  struct ProgramWork {
    std::unique_ptr<analysis::pointsto::PointsTo> pointsto;
    std::unique_ptr<analysis::ValueFlow> valueflow;
    std::optional<CachedProgramAnalysis> cached;  ///< program-tier hit
    std::vector<SiteOutcome> sites;
    std::vector<FnGroup> groups;
    std::uint64_t program_key = 0;
    CachedProgramAnalysis fresh;  ///< stats/devirt now, messages in 3+4
  };
  std::vector<ProgramWork> per_program(device_cloud.size());
  {
    FIRMRES_SPAN_DEVICE("phase.fields", "pipeline", image.profile.id);
    PhaseTimer timer(out.timings.fields_s);
    const auto build_program = [&](std::size_t i, support::ThreadPool* vp) {
      const ir::Program& program = *device_cloud[i];
      ProgramWork& work = per_program[i];
      if (cache != nullptr) {
        work.program_key = support::Hasher(0x70726f672e6b6579ULL)
                               .u64(analysis_salt)
                               .u64(program_hashes[i])
                               .digest();
        std::optional<CachedProgramAnalysis> hit =
            cache->lookup_program(work.program_key);
        if (hit.has_value()) {
          work.cached = std::move(*hit);
          return;
        }
      }
      std::unique_ptr<analysis::pointsto::PointsTo> pt;
      if (options_.pointsto)
        pt = std::make_unique<analysis::pointsto::PointsTo>(program, vp);
      analysis::ValueFlow::Options vf_options;
      if (options_.registry != nullptr)
        vf_options.substitutions = &registry_subs;
      vf_options.pointsto = pt.get();
      auto vf =
          std::make_unique<analysis::ValueFlow>(program, vp, vf_options);
      const analysis::CallGraph cg(program, *vf);
      const MftBuilder builder(program, cg, options_.taint, pt.get());

      const analysis::ValueFlow::Stats stats = vf->stats();
      work.fresh.indirect_total = stats.indirect_total;
      work.fresh.indirect_resolved = stats.indirect_resolved;
      if (pt != nullptr) {
        const analysis::pointsto::PointsTo::Stats pt_stats = pt->stats();
        work.fresh.pt_loads_total = pt_stats.loads_total;
        work.fresh.pt_loads_resolved = pt_stats.loads_resolved;
        work.fresh.pt_loads_with_stores = pt_stats.loads_with_stores;
        work.fresh.pt_stores_total = pt_stats.stores_total;
        work.fresh.pt_stores_never_loaded = pt_stats.stores_never_loaded;
      }
      for (const analysis::ValueFlow::IndirectSite& site :
           vf->indirect_sites()) {
        if (site.target == nullptr) continue;
        work.fresh.devirt_sites.push_back(CachedProgramAnalysis::DevirtSite{
            site.caller->name(), site.target->name(), site.op->address,
            site.resolved_round});
      }

      // Delivery-callsite enumeration, exactly as MftBuilder::build_all
      // (callsite address order).
      std::vector<analysis::CallSite> sites;
      for (const std::string& name :
           ir::LibraryModel::instance().names_of_kind(ir::LibKind::MsgDeliver))
        for (const analysis::CallSite& site : cg.callsites_of(name))
          sites.push_back(site);
      std::sort(sites.begin(), sites.end(),
                [](const analysis::CallSite& a, const analysis::CallSite& b) {
                  return a.op->address < b.op->address;
                });

      if (cache == nullptr) {
        for (const analysis::CallSite& site : sites) {
          SiteOutcome s;
          s.mft = builder.build(site);
          work.sites.push_back(std::move(s));
        }
        work.valueflow = std::move(vf);
        return;
      }

      const std::uint64_t fn_salt =
          support::Hasher(0x666e2e73616c7431ULL)
              .u64(analysis_salt)
              .u64(AnalysisCache::hash_data_segment(program))
              .digest();
      // Group the sites by containing function. A function's sites form the
      // same subsequence in global (address) order and in its fn entry, so
      // rehydration is a per-group cursor.
      std::map<const ir::Function*, int> group_of;
      std::vector<int> site_group;
      for (const analysis::CallSite& site : sites) {
        const auto [it, inserted] = group_of.try_emplace(
            site.caller, static_cast<int>(work.groups.size()));
        if (inserted) {
          FnGroup g;
          g.fn = site.caller;
          g.key = support::Hasher(0x666e2e6b65793031ULL)
                      .u64(fn_salt)
                      .u64(AnalysisCache::hash_function_ir(*site.caller))
                      .digest();
          work.groups.push_back(std::move(g));
        }
        site_group.push_back(it->second);
      }
      std::vector<std::size_t> group_sites(work.groups.size(), 0);
      for (const int g : site_group) ++group_sites[static_cast<std::size_t>(g)];

      const auto dep_ok = [&](const CachedFunctionEntry::Dep& dep) {
        const ir::Function* dep_fn = program.function(dep.fn);
        if (dep_fn == nullptr) return false;
        if (AnalysisCache::hash_function_ir(*dep_fn) != dep.ir_hash)
          return false;
        if (vf->function_signature(dep_fn) != dep.vf_sig) return false;
        if (callers_hash(cg, dep.fn) != dep.callers_hash) return false;
        if ((pt != nullptr ? pt->function_signature(dep_fn) : 0) !=
            dep.pt_sig)
          return false;
        return true;
      };
      for (std::size_t g = 0; g < work.groups.size(); ++g) {
        FnGroup& group = work.groups[g];
        std::optional<CachedFunctionEntry> entry =
            cache->lookup_function(group.key, dep_ok);
        // The site count is derived from the function's own IR (part of the
        // key), so a shape mismatch only means a foreign entry — rebuild.
        if (entry.has_value() && entry->messages.size() == group_sites[g]) {
          group.from_cache = true;
          group.cached = std::move(entry->messages);
        }
      }

      std::vector<std::size_t> consumed(work.groups.size(), 0);
      for (std::size_t si = 0; si < sites.size(); ++si) {
        const std::size_t g = static_cast<std::size_t>(site_group[si]);
        FnGroup& group = work.groups[g];
        SiteOutcome s;
        s.group = static_cast<int>(g);
        if (group.from_cache) {
          s.ready = group.cached[consumed[g]++];
        } else {
          s.mft = builder.build(sites[si]);
          // The walk's visited functions are the true dynamic dependency
          // set of this fn's artifacts.
          group.dep_names.insert(group.fn->name());
          for (const TaintProvenance& p : s.mft->provenance)
            group.dep_names.insert(p.visited_functions.begin(),
                                   p.visited_functions.end());
        }
        work.sites.push_back(std::move(s));
      }
      // Record validation hashes for every dep while the solve is alive.
      for (FnGroup& group : work.groups) {
        if (group.from_cache) continue;
        for (const std::string& name : group.dep_names) {
          const ir::Function* dep_fn = program.function(name);
          if (dep_fn == nullptr) continue;
          group.deps.push_back(CachedFunctionEntry::Dep{
              name, AnalysisCache::hash_function_ir(*dep_fn),
              vf->function_signature(dep_fn), callers_hash(cg, name),
              pt != nullptr ? pt->function_signature(dep_fn) : 0});
        }
      }
      work.pointsto = std::move(pt);
      work.valueflow = std::move(vf);
    };
    if (pool != nullptr && device_cloud.size() > 1) {
      // Workers solve their program's value flow sequentially — the outer
      // fan-out already saturates the pool.
      support::parallel_for(*pool, device_cloud.size(),
                            [&](std::size_t i) { build_program(i, nullptr); });
    } else {
      for (std::size_t i = 0; i < device_cloud.size(); ++i)
        build_program(i, pool);
    }
    for (const ProgramWork& work : per_program) {
      const CachedProgramAnalysis* summary =
          work.cached.has_value() ? &*work.cached : &work.fresh;
      out.indirect_calls_total += static_cast<int>(summary->indirect_total);
      out.indirect_calls_resolved +=
          static_cast<int>(summary->indirect_resolved);
      out.memory_flow.loads_total += summary->pt_loads_total;
      out.memory_flow.loads_resolved += summary->pt_loads_resolved;
      out.memory_flow.loads_with_stores += summary->pt_loads_with_stores;
      out.memory_flow.stores_total += summary->pt_stores_total;
      out.memory_flow.stores_never_loaded += summary->pt_stores_never_loaded;
      if (events::enabled()) {
        // Fold provenance for every devirtualized site the taint walks and
        // the call graph will rely on.
        for (const CachedProgramAnalysis::DevirtSite& site :
             summary->devirt_sites)
          emit_devirt_event(out.device_id, site);
      }
      const auto observe_mft = [&](std::uint64_t nodes, std::uint64_t leaves) {
        ++mft_count;
        mft_nodes += nodes;
        mft_leaves += leaves;
        g_mft_nodes.observe(nodes);
        g_mft_leaves.observe(leaves);
      };
      if (work.cached.has_value()) {
        for (const CachedMessage& m : work.cached->messages)
          observe_mft(m.mft_nodes, m.mft_leaves);
      } else {
        for (const SiteOutcome& s : work.sites)
          observe_mft(
              s.ready.has_value() ? s.ready->mft_nodes : s.mft->node_count(),
              s.ready.has_value() ? s.ready->mft_leaves : s.mft->leaf_count());
      }
    }
  }

  // --- Phases 3+4: semantics recovery & field concatenation (§IV-C/D) ------
  // The Reconstructor interleaves classification (per slice) with grouping
  // and ordering; we attribute its time to the two phases by a second pass
  // below. Classification dominates, so time it directly per message.
  {
    FIRMRES_SPAN_DEVICE("phase.reconstruct", "pipeline", image.profile.id);
    const Reconstructor reconstructor(model_);
    // One delivery callsite's outcome enters the analysis — identically
    // whether it was just reconstructed or rehydrated from the store.
    const auto deliver = [&](const CachedMessage& m) {
      PhaseTimer timer(out.timings.concat_s);
      emit_decision_event(out.device_id, m.decision);
      out.mft_decisions.push_back(m.decision);
      if (m.message.has_value()) {
        out.opaque_terminations += m.message->opaque_terminations;
        out.param_terminations += m.message->param_terminations;
        out.memory_terminations += m.message->memory_terminations;
        emit_message_events(out.device_id, *m.message);
        out.messages.push_back(*m.message);
      } else {
        ++out.discarded_lan;
      }
    };
    for (ProgramWork& work : per_program) {
      if (work.cached.has_value()) {
        for (const CachedMessage& m : work.cached->messages) deliver(m);
        continue;
      }
      for (SiteOutcome& s : work.sites) {
        if (s.ready.has_value()) {
          deliver(*s.ready);
          work.fresh.messages.push_back(std::move(*s.ready));
          continue;
        }
        CachedMessage m;
        m.fn = s.mft->delivery_fn->name();
        {
          PhaseTimer timer(out.timings.semantics_s);
          m.message = reconstructor.reconstruct_one(
              *s.mft, out.device_cloud_executable, work.valueflow.get(),
              &m.decision);
        }
        m.mft_nodes = s.mft->node_count();
        m.mft_leaves = s.mft->leaf_count();
        deliver(m);
        if (cache != nullptr) {
          if (s.group >= 0)
            work.groups[static_cast<std::size_t>(s.group)].fresh.push_back(m);
          work.fresh.messages.push_back(std::move(m));
        }
      }
      if (cache != nullptr) {
        PhaseTimer timer(out.timings.concat_s);
        for (FnGroup& group : work.groups) {
          if (group.from_cache) continue;
          CachedFunctionEntry entry;
          entry.fn = group.fn->name();
          entry.deps = group.deps;
          entry.messages = std::move(group.fresh);
          cache->store_function(group.key, entry);
        }
        cache->store_program(work.program_key, work.fresh);
      }
    }
  }

  // Post-hoc provenance tagging: fields whose taint walk crossed a
  // registry-matched function carry the component labels, so `firmres
  // explain` can say "resolved via registry match". Applied after the
  // cache stores above — cached artifacts never contain the tags — and to
  // out.messages regardless of which tier produced them, so warm, cold,
  // and fn-tier paths are tagged identically.
  if (!component_labels.empty()) {
    for (ReconstructedMessage& message : out.messages) {
      for (ReconstructedField& field : message.fields) {
        std::vector<std::string>& labels =
            field.provenance.registry_components;
        for (const std::string& fn : field.provenance.visited_functions) {
          const auto it = component_labels.find(fn);
          if (it != component_labels.end()) labels.push_back(it->second);
        }
        if (labels.empty()) continue;
        // visited_functions is walk order; report sorted and deduplicated.
        std::sort(labels.begin(), labels.end());
        labels.erase(std::unique(labels.begin(), labels.end()),
                     labels.end());
      }
    }
  }

  // --- Phase 5: message form check (§IV-E) ----------------------------------
  {
    FIRMRES_SPAN_DEVICE("phase.check", "pipeline", image.profile.id);
    PhaseTimer timer(out.timings.check_s);
    std::vector<std::string> files;
    for (const fw::FirmwareFile& f : image.files) files.push_back(f.path);
    out.flaws = FormChecker().check(out.messages, files);
  }
  finalize();
  return out;
}

}  // namespace firmres::core
