// Code-slice generation from MFT paths (§IV-C).
//
// For every leaf of an MFT we compute the slice of construction ops along
// its root-to-leaf path, rendered in the semantically enriched P-Code form
// ("CALL (Fun, sprintf) (Local, finalBuf, v_1357) (Cons, …)").
//
// Formatted-output assembly needs the extra separation step of §IV-C: a
// sprintf format string covering several fields would put every field's
// keyword into every field's slice. We identify the delimiter by splitting
// candidate delimiters and clustering the resulting substrings by LCS
// similarity, then substitute each value argument's own piece for the full
// format string in its slice (Listing 3).
#pragma once

#include <string>
#include <vector>

#include "core/mft.h"

namespace firmres::analysis {
class ValueFlow;
}

namespace firmres::core {

/// What a leaf contributes to the message.
enum class LeafRole {
  Field,         ///< an actual message field (what Table II counts)
  FormatString,  ///< sprintf/snprintf format operand
  JsonKey,       ///< cJSON_Add* key operand
  Delimiter,     ///< separator literal in concat assembly
  PathConst,     ///< request path / MQTT topic literal
  Structural,    ///< other non-field plumbing (object creation, undef, …)
};

const char* leaf_role_name(LeafRole role);

struct FieldSlice {
  const MftNode* leaf = nullptr;
  LeafRole role = LeafRole::Structural;
  /// Enriched token stream for the classifier.
  std::string slice_text;
  /// For sprintf value arguments: the per-field format piece ("uid=%s").
  std::string format_piece;
  /// Wire key recovered from the format piece or the cJSON key sibling.
  std::string recovered_key;
  /// §IV-C split-decision provenance (docs/PROVENANCE.md): the delimiter
  /// chosen for this field's format string ('\0' when the format was not
  /// split), the LCS-cohesion score of the winning candidate, and how many
  /// '%'-bearing pieces the split produced. Only set on Field slices whose
  /// key was recovered through a sprintf format.
  char split_delimiter = '\0';
  double split_score = 0.0;
  int split_pieces = 0;
};

class SliceGenerator {
 public:
  struct Options {
    /// Ablation: disable the §IV-C partial-message separation — value
    /// arguments keep the full multi-field format string in their slices.
    bool split_formats = true;
    /// When set, sprintf/snprintf format operands that are not string
    /// literals (copied through locals, assembled by strcpy/strcat) are
    /// recovered from the value-flow analysis, so §IV-C splitting and key
    /// recovery still see the format text. Not owned; may be nullptr.
    const analysis::ValueFlow* valueflow = nullptr;
  };

  explicit SliceGenerator(const Mft& mft) : SliceGenerator(mft, Options{}) {}
  SliceGenerator(const Mft& mft, Options options);

  /// One FieldSlice per leaf, in tree order.
  const std::vector<FieldSlice>& slices() const { return slices_; }

  /// The multi-field format strings encountered (for the thd clustering
  /// statistics of Table II).
  const std::vector<std::string>& multi_field_formats() const {
    return multi_field_formats_;
  }

  // --- splitting machinery (exposed for tests and the ablation bench) -----

  /// Split a format string on one delimiter, keeping non-empty pieces.
  static std::vector<std::string> split_format(const std::string& fmt,
                                               char delimiter);

  /// Identify the most plausible field delimiter of a format string by
  /// trying candidates and scoring piece cohesion (mean pairwise LCS
  /// similarity of '%'-bearing pieces). Returns '\0' when no candidate
  /// yields a multi-piece split.
  static char identify_delimiter(const std::string& fmt);

  /// identify_delimiter plus the winning candidate's cohesion score
  /// (similarity × piece count; 0.0 when no candidate splits), for the
  /// split-decision provenance record.
  static char identify_delimiter_scored(const std::string& fmt,
                                        double* score);

  /// Single-link agglomerative clustering of substrings with
  /// Similarity(a,b) = 2·LCS/(|a|+|b|) ≥ threshold.
  static std::vector<std::vector<std::string>> cluster_pieces(
      const std::vector<std::string>& pieces, double threshold);

  /// The '%'-bearing pieces of a format string, using the identified
  /// delimiter (relaxed: falls back to '&'/',' splits for single-field
  /// formats so key recovery still works).
  static std::vector<std::string> field_pieces(const std::string& fmt);

  /// Leading request path embedded in a query-style format string
  /// ("?m=cloud&a=q&uid=%s" → "?m=cloud&a=q"); empty when absent.
  static std::string path_prefix(const std::string& fmt);

 private:
  void process_leaf(const Mft& mft, const MftNode* leaf);

  Options options_;
  std::vector<FieldSlice> slices_;
  std::vector<std::string> multi_field_formats_;
};

}  // namespace firmres::core
