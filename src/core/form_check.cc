#include "core/form_check.h"

#include <set>

#include "support/strings.h"

namespace firmres::core {

const char* flaw_kind_name(FlawKind kind) {
  switch (kind) {
    case FlawKind::MissingPrimitives: return "missing-primitives";
    case FlawKind::HardcodedSecret: return "hardcoded-secret";
  }
  return "?";
}

bool FormChecker::satisfies_any_form(const ReconstructedMessage& msg) {
  const bool id = msg.has_primitive(fw::Primitive::DevIdentifier);
  if (!id) return false;
  if (msg.has_primitive(fw::Primitive::BindToken)) return true;   // ①
  if (msg.has_primitive(fw::Primitive::Signature)) return true;   // ②
  if (msg.has_primitive(fw::Primitive::DevSecret) &&
      msg.has_primitive(fw::Primitive::UserCred))
    return true;  // ③ / binding
  return false;
}

std::vector<FlawReport> FormChecker::check(
    const std::vector<ReconstructedMessage>& messages,
    const std::vector<std::string>& image_files) const {
  const std::set<std::string> files(image_files.begin(), image_files.end());
  std::vector<FlawReport> out;
  for (std::size_t i = 0; i < messages.size(); ++i) {
    const ReconstructedMessage& msg = messages[i];

    std::set<fw::Primitive> present;
    for (const ReconstructedField& f : msg.fields) {
      if (f.semantics != fw::Primitive::None &&
          f.semantics != fw::Primitive::Address)
        present.insert(f.semantics);
    }

    if (!satisfies_any_form(msg)) {
      FlawReport r;
      r.message_index = i;
      r.delivery_address = msg.delivery_address;
      r.kind = FlawKind::MissingPrimitives;
      r.present = {present.begin(), present.end()};
      std::vector<std::string> names;
      for (const fw::Primitive p : r.present)
        names.emplace_back(fw::primitive_name(p));
      r.detail = names.empty()
                     ? "no access-control primitives in message"
                     : "only {" + support::join(names, ", ") +
                           "} present; no valid composition";
      out.push_back(std::move(r));
    }

    // Hard-coded credential tracking.
    for (const ReconstructedField& f : msg.fields) {
      const bool credential = f.semantics == fw::Primitive::DevSecret ||
                              f.semantics == fw::Primitive::BindToken;
      if (!credential) continue;
      if (f.hardcoded && f.source == FieldValueSource::StringConst) {
        FlawReport r;
        r.message_index = i;
        r.delivery_address = msg.delivery_address;
        r.kind = FlawKind::HardcodedSecret;
        r.present = {present.begin(), present.end()};
        r.detail = support::format(
            "%s value hard-coded in binary: \"%s\"",
            fw::primitive_name(f.semantics), f.const_value.c_str());
        out.push_back(std::move(r));
      } else if (f.source == FieldValueSource::FileRead &&
                 files.contains(f.source_detail)) {
        FlawReport r;
        r.message_index = i;
        r.delivery_address = msg.delivery_address;
        r.kind = FlawKind::HardcodedSecret;
        r.present = {present.begin(), present.end()};
        r.detail = support::format(
            "%s read from firmware file %s (<Variable = Function(Constant)>)",
            fw::primitive_name(f.semantics), f.source_detail.c_str());
        out.push_back(std::move(r));
      }
    }
  }
  return out;
}

}  // namespace firmres::core
