// End-to-end FIRMRES pipeline (Fig. 3).
//
// firmware image → pinpoint device-cloud executables → backward taint /
// MFTs → slices + semantics → message reconstruction → form check.
// Phase wall-clock times are recorded for the §V-E performance breakdown.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "analysis/components/matcher.h"
#include "core/exec_identifier.h"
#include "core/form_check.h"
#include "core/taint.h"
#include "core/reconstructor.h"
#include "core/semantics.h"
#include "firmware/firmware_image.h"
#include "support/thread_pool.h"

namespace firmres::core {

class AnalysisCache;

struct PhaseTimings {
  double pinpoint_s = 0.0;   ///< device-cloud executable identification
  double fields_s = 0.0;     ///< taint analysis / MFT construction
  double semantics_s = 0.0;  ///< slice classification
  double concat_s = 0.0;     ///< grouping, ordering, format inference
  double check_s = 0.0;      ///< message form check
  /// CPU time the analyzing thread consumed over the whole run. Under
  /// intra-image parallelism worker-thread cycles are not attributed here,
  /// so cpu_total_s ≤ total_s per device; corpus-level cpu/wall ratios come
  /// from CorpusResult.
  double cpu_total_s = 0.0;
  /// Wall-clock total: the sum of the five phase slots.
  double total_s() const {
    return pinpoint_s + fields_s + semantics_s + concat_s + check_s;
  }
};

struct DeviceAnalysis {
  int device_id = 0;
  /// Path of the identified device-cloud executable; empty when none found
  /// (script-based devices 21/22).
  std::string device_cloud_executable;
  /// Reconstructed (non-LAN) messages in delivery-callsite order.
  std::vector<ReconstructedMessage> messages;
  int discarded_lan = 0;
  /// Keep/drop record per built MFT, in delivery-callsite order — why each
  /// candidate message survived (or fell to) the §IV-D LAN filter.
  std::vector<MftDecision> mft_decisions;
  std::vector<FlawReport> flaws;
  /// Value-flow visibility over the device-cloud programs: how many CallInd
  /// sites exist and how many folded to a concrete callee (devirtualized).
  int indirect_calls_total = 0;
  int indirect_calls_resolved = 0;
  /// Taint-walk terminations without a source, summed over all reconstructed
  /// messages (§V-C; per-message counts live on ReconstructedMessage).
  int opaque_terminations = 0;
  int param_terminations = 0;
  int memory_terminations = 0;
  /// Memory def-use visibility over the device-cloud programs
  /// (docs/POINTSTO.md): points-to load/store resolution totals, summed
  /// like the valueflow counters above — the report's `memory_flow` block.
  struct MemoryFlowStats {
    std::uint64_t loads_total = 0;
    std::uint64_t loads_resolved = 0;
    std::uint64_t loads_with_stores = 0;
    std::uint64_t stores_total = 0;
    std::uint64_t stores_never_loaded = 0;
  };
  MemoryFlowStats memory_flow;
  /// Per-device work metrics (docs/OBSERVABILITY.md): dotted name → count,
  /// in a fixed emission order. Derived from what was analyzed, never from
  /// how long it took, so the block is byte-identical at any --jobs level
  /// and stays in the report even when timings are omitted.
  std::vector<std::pair<std::string, std::uint64_t>> metrics;
  /// Per-image component inventory (docs/COMPONENTS.md): known libraries
  /// the registry matched across all executables. Empty without a registry.
  std::vector<analysis::components::ComponentHit> components;
  PhaseTimings timings;
};

class Pipeline {
 public:
  struct Options {
    ExecutableIdentifier::Options identifier;
    MftBuilder::Options taint;
    /// Run the IR verifier over every executable before Phase 1 and throw
    /// analysis::verify::VerifyError when one has lint errors. Under
    /// CorpusRunner the exception isolates the device (a DeviceFailure)
    /// instead of aborting the run.
    bool lint_gate = false;
    /// Build the points-to memory def-use index per device-cloud program
    /// and thread it through ValueFlow and the taint walks
    /// (docs/POINTSTO.md). On by default; off reproduces the legacy
    /// walk that terminates at every Load — kept for A/B gates.
    bool pointsto = true;
    /// Optional incremental analysis cache (not owned; must outlive the
    /// pipeline). When set, §IV-A verdicts and per-program/per-function
    /// Phase 2-4 artifacts are looked up by content hash before being
    /// recomputed, and fresh results are stored back. The cached and cold
    /// paths produce byte-identical reports and event logs
    /// (docs/CACHING.md); only the cache.* metrics and timings differ.
    AnalysisCache* cache = nullptr;
    /// Optional component registry (not owned; must outlive the pipeline).
    /// When set, every executable is fingerprint-matched against it before
    /// Phase 1: matches fill DeviceAnalysis.components, certified matches
    /// substitute their precomputed value-flow environments for live
    /// solves, and taint provenance crossing matched functions is tagged
    /// (docs/COMPONENTS.md). Everything except the new components /
    /// registry_components report blocks is byte-identical to a
    /// registry-less run.
    const analysis::components::LibraryRegistry* registry = nullptr;
  };

  /// `model` must outlive the pipeline.
  explicit Pipeline(const SemanticsModel& model)
      : model_(model), options_() {}
  Pipeline(const SemanticsModel& model, Options options)
      : model_(model), options_(options) {}

  DeviceAnalysis analyze(const fw::FirmwareImage& image) const {
    return analyze(image, nullptr);
  }

  /// As above, but Phase 2 (MFT construction) fans out across the image's
  /// device-cloud programs on `pool` when one is given. Results are
  /// aggregated in program order, so the analysis is bit-identical to the
  /// sequential path (timings aside).
  DeviceAnalysis analyze(const fw::FirmwareImage& image,
                         support::ThreadPool* pool) const;

 private:
  const SemanticsModel& model_;
  Options options_;
};

}  // namespace firmres::core
