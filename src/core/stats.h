// Cross-run telemetry aggregation — `firmres stats` (docs/OBSERVABILITY.md).
//
// Every firmres run can leave artifacts behind: a --metrics-out registry
// dump, an --events-out decision log, a serve-mode JSONL stream. This
// module folds any mix of them — across runs, machines, or days — into one
// aggregate: registry metrics merge the way the live registry would have
// (counters and histogram buckets sum exactly, since power-of-two buckets
// align across files; high-water gauges take the max), JSONL files are
// tallied by record kind, and the result renders as one table with
// percentiles recomputed from the merged buckets. That recomputation is
// the point of shipping raw buckets in the artifacts: a p99 of merged
// buckets is a true p99 of the union, which no averaging of per-run p99s
// can give.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "support/observability/metrics.h"

namespace firmres::core::stats {

struct Aggregate {
  int metrics_files = 0;
  int jsonl_files = 0;
  std::uint64_t jsonl_lines = 0;
  /// Merged registry values, sorted by name. Kind is not recorded in the
  /// JSON artifacts, so merged entries carry Kind::Work uniformly.
  support::metrics::Snapshot merged;
  /// JSONL record tallies, sorted by key: serve-stream lines count under
  /// "event:<name>", decision-event lines under "category:<name>".
  std::vector<std::pair<std::string, std::uint64_t>> record_counts;
};

/// Load and merge artifacts. Each path is auto-detected: a document whose
/// "format" is "firmres-metrics" merges into the registry section; any
/// other content is treated as JSONL and tallied line by line. Throws
/// support::ParseError on unreadable files or unparseable lines.
Aggregate aggregate_artifacts(const std::vector<std::string>& paths);

/// Render the aggregate as the `firmres stats` table (counters, gauges,
/// histograms with p50/p90/p99/max from the merged buckets, record
/// tallies).
std::string render_table(const Aggregate& aggregate);

}  // namespace firmres::core::stats
