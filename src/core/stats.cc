#include "core/stats.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>

#include "support/error.h"
#include "support/json.h"
#include "support/strings.h"

namespace firmres::core::stats {

namespace {

namespace metrics = support::metrics;
using support::Json;
using support::ParseError;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ParseError("cannot read artifact " + path);
  std::ostringstream body;
  body << in.rdbuf();
  return body.str();
}

/// Map a serialized bucket bound back to its index: "inf" is the unbounded
/// last bucket, otherwise the bound is the exact power of two 2^i written
/// for bucket i.
int bucket_index_for_bound(const std::string& bound, const std::string& path) {
  if (bound == "inf") return metrics::kHistogramBuckets - 1;
  for (int i = 0; i < metrics::kHistogramBuckets - 1; ++i) {
    if (bound == std::to_string(std::uint64_t{1} << i)) return i;
  }
  throw ParseError("unknown histogram bucket bound \"" + bound + "\" in " +
                   path);
}

struct Accumulator {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::uint64_t> gauges;  // max-merged
  std::map<std::string, metrics::Snapshot::HistogramValue> histograms;
  std::map<std::string, std::uint64_t> records;
};

std::uint64_t as_u64(const Json& value) {
  const double d = value.as_number();
  return d > 0 ? static_cast<std::uint64_t>(d) : 0;
}

void merge_metrics_doc(const Json& doc, const std::string& path,
                       Accumulator& acc) {
  if (const Json* counters = doc.find("counters")) {
    for (const auto& [name, value] : counters->as_object())
      acc.counters[name] += as_u64(value);
  }
  if (const Json* gauges = doc.find("gauges")) {
    for (const auto& [name, value] : gauges->as_object()) {
      std::uint64_t& slot = acc.gauges[name];
      slot = std::max(slot, as_u64(value));
    }
  }
  if (const Json* histograms = doc.find("histograms")) {
    for (const auto& [name, entry] : histograms->as_object()) {
      metrics::Snapshot::HistogramValue& h = acc.histograms[name];
      if (h.name.empty()) {
        h.name = name;
        h.kind = metrics::Kind::Work;
        h.buckets.fill(0);
      }
      if (const Json* count = entry.find("count")) h.count += as_u64(*count);
      if (const Json* sum = entry.find("sum")) h.sum += as_u64(*sum);
      if (const Json* buckets = entry.find("buckets")) {
        for (const auto& [bound, n] : buckets->as_object()) {
          h.buckets[static_cast<std::size_t>(
              bucket_index_for_bound(bound, path))] += as_u64(n);
        }
      }
    }
  }
}

void tally_jsonl(const std::string& body, const std::string& path,
                 Accumulator& acc, std::uint64_t& lines) {
  std::istringstream in(body);
  std::string line;
  std::uint64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line.find_first_not_of(" \t\r") == std::string::npos)
      continue;
    Json record;
    try {
      record = Json::parse(line);
    } catch (const ParseError&) {
      throw ParseError(path + ":" + std::to_string(line_no) +
                       ": not a JSON record");
    }
    ++lines;
    if (const Json* event = record.find("event"))
      ++acc.records["event:" + event->as_string()];
    else if (const Json* category = record.find("category"))
      ++acc.records["category:" + category->as_string()];
    else
      ++acc.records["other"];
  }
}

}  // namespace

Aggregate aggregate_artifacts(const std::vector<std::string>& paths) {
  Aggregate agg;
  Accumulator acc;
  for (const std::string& path : paths) {
    const std::string body = read_file(path);
    // A metrics dump is one pretty-printed document with a format stamp;
    // everything else (events logs, serve streams) is JSONL.
    bool is_metrics = false;
    const std::size_t first = body.find_first_not_of(" \t\r\n");
    if (first != std::string::npos && body[first] == '{' &&
        body.find('\n') != std::string::npos) {
      try {
        const Json doc = Json::parse(body);
        const Json* format = doc.find("format");
        if (format != nullptr && format->as_string() == "firmres-metrics") {
          merge_metrics_doc(doc, path, acc);
          is_metrics = true;
        }
      } catch (const ParseError&) {
        is_metrics = false;  // multi-line JSONL; fall through
      }
    }
    if (is_metrics) {
      ++agg.metrics_files;
    } else {
      ++agg.jsonl_files;
      tally_jsonl(body, path, acc, agg.jsonl_lines);
    }
  }

  for (const auto& [name, value] : acc.counters)
    agg.merged.counters.push_back({name, metrics::Kind::Work, value});
  for (const auto& [name, value] : acc.gauges)
    agg.merged.gauges.push_back({name, metrics::Kind::Work, value});
  for (const auto& [name, h] : acc.histograms)
    agg.merged.histograms.push_back(h);
  for (const auto& [key, count] : acc.records)
    agg.record_counts.emplace_back(key, count);
  return agg;
}

std::string render_table(const Aggregate& aggregate) {
  std::string out = support::format(
      "firmres stats — %d metrics file(s), %d jsonl file(s), %llu jsonl "
      "record(s)\n",
      aggregate.metrics_files, aggregate.jsonl_files,
      static_cast<unsigned long long>(aggregate.jsonl_lines));

  if (!aggregate.merged.counters.empty()) {
    out += "\ncounters\n";
    for (const auto& c : aggregate.merged.counters)
      out += support::format("  %-44s %12llu\n", c.name.c_str(),
                             static_cast<unsigned long long>(c.value));
  }
  if (!aggregate.merged.gauges.empty()) {
    out += "\ngauges (max)\n";
    for (const auto& g : aggregate.merged.gauges)
      out += support::format("  %-44s %12llu\n", g.name.c_str(),
                             static_cast<unsigned long long>(g.value));
  }
  if (!aggregate.merged.histograms.empty()) {
    out += support::format("\nhistograms\n  %-28s %10s %12s %10s %10s %10s %10s\n",
                           "name", "count", "sum", "p50", "p90", "p99", "max");
    for (const auto& h : aggregate.merged.histograms) {
      out += support::format(
          "  %-28s %10llu %12llu %10.1f %10.1f %10.1f %10.1f\n",
          h.name.c_str(), static_cast<unsigned long long>(h.count),
          static_cast<unsigned long long>(h.sum),
          metrics::histogram_percentile(h, 0.50),
          metrics::histogram_percentile(h, 0.90),
          metrics::histogram_percentile(h, 0.99),
          metrics::histogram_percentile(h, 1.0));
    }
  }
  if (!aggregate.record_counts.empty()) {
    out += "\njsonl records\n";
    for (const auto& [key, count] : aggregate.record_counts)
      out += support::format("  %-44s %12llu\n", key.c_str(),
                             static_cast<unsigned long long>(count));
  }
  return out;
}

}  // namespace firmres::core::stats
