// Content-addressed incremental analysis cache (docs/CACHING.md).
//
// Real triage workloads are dominated by firmware *updates*: most functions
// of the new image are byte-identical to the previous one, yet a cold
// `analyze` recomputes every per-function artifact from scratch. This store
// keys the expensive per-function and per-program analysis products —
// §IV-A device-cloud verdicts, ValueFlow facts, taint/MFT-derived
// reconstructed messages — by a content hash of the IR that produced them
// plus the Pipeline options in force, so an update only re-analyzes what
// changed.
//
// Three entry tiers, from coarse to fine:
//   * ident   — per executable: the §IV-A is_device_cloud verdict.
//   * program — per device-cloud program: the full Phase 2-4 product
//     (value-flow stats, devirtualized sites, ordered messages/decisions).
//     A hit skips ValueFlow, taint, and reconstruction entirely.
//   * fn      — per delivery-bearing function, used when the program tier
//     misses (the firmware-update case): that function's reconstructed
//     messages, guarded by a recorded dependency list.
//
// The analyses are interprocedural, so a per-function key over the
// function's own IR alone would be unsound. Instead each fn entry records
// the functions its taint walks visited (TaintProvenance) and, per
// dependency, three validation hashes: the dep's IR content, its ValueFlow
// signature, and its resolved-caller set. On lookup the pipeline recomputes
// those against the *current* program (ValueFlow is cheap relative to
// taint + reconstruction) and rejects the entry when any drifted — the same
// recorded-dependency discipline a build system's depfiles implement.
//
// Durability: one JSON file per entry under Options::dir, written
// atomically (unique temp + rename) so concurrent writers can share a
// directory; corrupt, truncated, version-skewed, or hash-mismatched files
// load as misses (counted in cache.load_errors), never as errors. Eviction
// is mtime-LRU over Options::max_entries.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/reconstructor.h"
#include "ir/program.h"
#include "support/json.h"

namespace firmres::core {

/// One delivery callsite's cached outcome: the §IV-D keep/drop decision,
/// the reconstructed message when kept, and the source MFT's size (needed
/// to reproduce the report's taint.mft_* metrics without rebuilding the
/// tree). `fn` is the containing (delivery-bearing) function.
struct CachedMessage {
  std::string fn;
  MftDecision decision;
  std::optional<ReconstructedMessage> message;
  std::uint64_t mft_nodes = 0;
  std::uint64_t mft_leaves = 0;
};

/// Phase 2-4 product of one device-cloud program, in the exact shape the
/// pipeline needs to rehydrate a warm run byte-identically: stats for the
/// report's valueflow block, devirtualized sites for --events-out
/// re-emission, and messages in delivery-callsite order.
struct CachedProgramAnalysis {
  std::uint64_t indirect_total = 0;
  std::uint64_t indirect_resolved = 0;
  /// Points-to memory def-use stats for the report's memory_flow block
  /// (docs/POINTSTO.md) — a program-tier hit skips the solve, so the
  /// numbers must rehydrate from here.
  std::uint64_t pt_loads_total = 0;
  std::uint64_t pt_loads_resolved = 0;
  std::uint64_t pt_loads_with_stores = 0;
  std::uint64_t pt_stores_total = 0;
  std::uint64_t pt_stores_never_loaded = 0;
  struct DevirtSite {
    std::string caller;
    std::string target;
    std::uint64_t address = 0;
    int round = 0;
  };
  std::vector<DevirtSite> devirt_sites;
  std::vector<CachedMessage> messages;
};

/// Per-function entry: one delivery-bearing function's messages plus the
/// recorded dependencies that gate their reuse.
struct CachedFunctionEntry {
  std::string fn;
  struct Dep {
    std::string fn;
    /// Content hash of the dep's IR (AnalysisCache::hash_function_ir).
    std::uint64_t ir_hash = 0;
    /// ValueFlow::function_signature of the dep in the current solve.
    std::uint64_t vf_sig = 0;
    /// Hash of the dep's resolved-caller set (taint ascends through
    /// callsites, so a *new caller elsewhere* invalidates this function's
    /// walks even though no dep's own IR changed).
    std::uint64_t callers_hash = 0;
    /// PointsTo::function_signature of the dep: a Store added *anywhere*
    /// can change what a Load in this function's walks resolves to, and
    /// the dep's signature covers exactly its observable load/store facts
    /// (docs/POINTSTO.md).
    std::uint64_t pt_sig = 0;
  };
  std::vector<Dep> deps;  ///< includes `fn` itself; name order
  std::vector<CachedMessage> messages;  ///< this fn's callsites, addr order
};

class AnalysisCache {
 public:
  struct Options {
    /// On-disk store directory; created on construction.
    std::string dir;
    /// mtime-LRU eviction cap (entry files, all tiers pooled).
    std::size_t max_entries = 4096;
    /// Emit per-lookup "cache" category events. Off by default: cache
    /// events describe *how this run executed*, not *what the firmware
    /// contains*, so they would break the warm-vs-cold event-log
    /// byte-identity the differential harness checks.
    bool emit_events = false;
  };

  /// Instance-local mirror of the cache.* registry counters, for tests
  /// that inspect one cache without resetting global metrics.
  struct Stats {
    std::uint64_t ident_hits = 0;
    std::uint64_t ident_misses = 0;
    std::uint64_t program_hits = 0;
    std::uint64_t program_misses = 0;
    std::uint64_t fn_hits = 0;
    std::uint64_t fn_misses = 0;
    std::uint64_t stores = 0;
    std::uint64_t evictions = 0;
    std::uint64_t load_errors = 0;
  };

  explicit AnalysisCache(Options options);

  const Options& options() const { return options_; }

  // --- Content hashing ------------------------------------------------------
  /// Content hash of one function's IR: name, entry, params, block
  /// structure, and every op (address, opcode, operands, callee).
  static std::uint64_t hash_function_ir(const ir::Function& fn);
  /// Content hash of a whole program: name, data segment, all functions.
  static std::uint64_t hash_program_ir(const ir::Program& program);
  /// Content hash of the data segment alone (per-fn entries salt with this:
  /// Ram varnodes resolve through it, so its content is an input to every
  /// function's analysis).
  static std::uint64_t hash_data_segment(const ir::Program& program);

  // --- ident tier -----------------------------------------------------------
  std::optional<bool> lookup_ident(std::uint64_t key);
  void store_ident(std::uint64_t key, bool is_device_cloud);

  // --- program tier ---------------------------------------------------------
  std::optional<CachedProgramAnalysis> lookup_program(std::uint64_t key);
  void store_program(std::uint64_t key, const CachedProgramAnalysis& value);

  // --- fn tier --------------------------------------------------------------
  /// `dep_ok` revalidates one recorded dependency against the live program
  /// (typically: recompute ir/vf/caller hashes and compare). The entry is
  /// returned only when every dep validates; a rejected entry counts as a
  /// miss.
  std::optional<CachedFunctionEntry> lookup_function(
      std::uint64_t key,
      const std::function<bool(const CachedFunctionEntry::Dep&)>& dep_ok);
  void store_function(std::uint64_t key, const CachedFunctionEntry& value);

  /// Dependency lists of every fn-tier entry currently on disk, keyed by
  /// entry key. Lets the incrementality property test compute the expected
  /// invalidation set of a mutation without private access.
  std::vector<std::pair<std::uint64_t, CachedFunctionEntry>>
  function_entries();

  Stats stats() const;

 private:
  std::optional<support::Json> load_payload(const char* kind,
                                            std::uint64_t key);
  void store_payload(const char* kind, std::uint64_t key,
                     const support::Json& payload);
  void evict_locked();
  void note_lookup(const char* kind, std::uint64_t key, bool hit);

  Options options_;
  mutable std::mutex mu_;
  Stats stats_;
};

}  // namespace firmres::core
