#include "core/explain.h"

#include <cctype>

#include "support/error.h"
#include "support/strings.h"

namespace firmres::core {

namespace {

using support::Json;

const Json* require(const Json& obj, const char* key) {
  const Json* value = obj.find(key);
  if (value == nullptr)
    throw support::ParseError(std::string("report is missing '") + key +
                              "' — not a firmres report?");
  return value;
}

std::string str_or(const Json& obj, const char* key,
                   const std::string& fallback = {}) {
  const Json* value = obj.find(key);
  return value != nullptr && value->is_string() ? value->as_string()
                                                : fallback;
}

int int_or(const Json& obj, const char* key, int fallback = 0) {
  const Json* value = obj.find(key);
  return value != nullptr && value->is_number()
             ? static_cast<int>(value->as_number())
             : fallback;
}

bool is_ordinal(const std::string& s) {
  if (s.empty()) return false;
  for (const char c : s)
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  return true;
}

/// The device's analysis object inside a single- or multi-image report.
const Json& device_report(const Json& report, int device_id) {
  if (report.is_array()) {
    for (const Json& entry : report.as_array()) {
      if (entry.is_object() && int_or(entry, "device_id", -1) == device_id)
        return entry;
    }
    throw support::ParseError("no device " + std::to_string(device_id) +
                              " in this report");
  }
  if (!report.is_object() || report.find("device_id") == nullptr)
    throw support::ParseError("not a firmres report document");
  if (int_or(report, "device_id", -1) != device_id)
    throw support::ParseError(
        "report is for device " +
        std::to_string(int_or(report, "device_id", -1)) + ", not device " +
        std::to_string(device_id));
  return report;
}

void render_field(const Json& message, const Json& field, int ordinal,
                  std::string& out) {
  const std::string key = str_or(field, "key");
  out += support::format("  [%d] field \"%s\" -> %s", ordinal, key.c_str(),
                         str_or(field, "semantics", "?").c_str());
  out += " (source " + str_or(field, "source", "?");
  const std::string detail = str_or(field, "source_detail");
  if (!detail.empty()) out += ": " + detail;
  out += ")";
  if (const Json* hc = field.find("hardcoded");
      hc != nullptr && hc->is_bool() && hc->as_bool())
    out += " [hardcoded]";
  out += "\n";

  out += "      callsite " + str_or(message, "delivery_address", "?") +
         " via " + str_or(message, "delivery_callee", "?") + "\n";

  const Json* prov = field.find("provenance");
  if (prov == nullptr || !prov->is_object()) {
    out += "      (no provenance block in this report)\n";
    return;
  }

  // §IV-B taint walk.
  std::string chain;
  if (const Json* visited = prov->find("visited_functions");
      visited != nullptr && visited->is_array()) {
    for (const Json& fn : visited->as_array()) {
      if (!chain.empty()) chain += " > ";
      chain += fn.is_string() ? fn.as_string() : "?";
    }
  }
  out += "      taint: " + (chain.empty() ? "(no walk recorded)" : chain);
  out += support::format(
      " — terminated at %s (depth %d, %d devirtualized, %d caller ascents",
      str_or(*prov, "termination", "?").c_str(),
      int_or(*prov, "taint_depth"), int_or(*prov, "devirt_crossings"),
      int_or(*prov, "callsite_crossings"));
  if (const int memory = int_or(*prov, "memory_crossings"); memory > 0)
    out += support::format(", %d memory store hops", memory);
  out += ")\n";

  if (const Json* steps = prov->find("construction_path");
      steps != nullptr && steps->is_array() && steps->size() > 0) {
    std::string rendered;
    for (const Json& step : steps->as_array()) {
      if (!rendered.empty()) rendered += " ; ";
      rendered += step.is_string() ? step.as_string() : "?";
    }
    out += "      construction: " + rendered + "\n";
  }

  // Registry-matched library crossings (docs/COMPONENTS.md).
  if (const Json* components = prov->find("registry_components");
      components != nullptr && components->is_array() &&
      components->size() > 0) {
    std::string rendered;
    for (const Json& label : components->as_array()) {
      if (!rendered.empty()) rendered += ", ";
      rendered += label.is_string() ? label.as_string() : "?";
    }
    out += "      resolved via registry match: " + rendered + "\n";
  }

  // §IV-C format-split decision.
  if (const Json* split = prov->find("split");
      split != nullptr && split->is_object()) {
    const Json* score = split->find("score");
    out += support::format(
        "      split: piece \"%s\" — delimiter '%s', cohesion %.3f, "
        "%d pieces\n",
        str_or(*split, "format_piece").c_str(),
        str_or(*split, "delimiter").c_str(),
        score != nullptr && score->is_number() ? score->as_number() : 0.0,
        int_or(*split, "pieces"));
  }

  // §IV-C classifier decision.
  const Json* margin = prov->find("margin");
  out += support::format(
      "      classifier %s — margin %.3f\n",
      str_or(*prov, "model", "?").c_str(),
      margin != nullptr && margin->is_number() ? margin->as_number() : 0.0);
  if (const Json* scores = prov->find("label_scores");
      scores != nullptr && scores->is_object() && scores->size() > 0) {
    std::string line;
    for (const auto& [label, value] : scores->as_object()) {
      if (!line.empty()) line += " | ";
      line += support::format(
          "%s %.3f", label.c_str(),
          value.is_number() ? value.as_number() : 0.0);
    }
    out += "        " + line + "\n";
  }
}

}  // namespace

std::string explain_report(const Json& report,
                           const ExplainOptions& options) {
  const Json& device = device_report(report, options.device_id);
  if (str_or(device, "format") != "firmres-report")
    throw support::ParseError("not a firmres report document");

  std::string out = support::format(
      "device %d — %s\n", options.device_id,
      str_or(device, "device_cloud_executable", "(no executable)").c_str());

  // Component inventory (docs/COMPONENTS.md).
  if (const Json* components = device.find("components");
      components != nullptr && components->is_array() &&
      components->size() > 0) {
    out += "\ncomponents:\n";
    for (const Json& c : components->as_array()) {
      const Json* risky = c.find("risky");
      const Json* ambiguous = c.find("version_ambiguous");
      out += support::format(
          "  %s %s — %d/%d functions matched, %d substituted",
          str_or(c, "name", "?").c_str(), str_or(c, "version", "?").c_str(),
          int_or(c, "matched_functions"), int_or(c, "total_functions"),
          int_or(c, "substituted_functions"));
      if (ambiguous != nullptr && ambiguous->is_bool() &&
          ambiguous->as_bool())
        out += " [version ambiguous]";
      if (risky != nullptr && risky->is_bool() && risky->as_bool())
        out += " [RISKY: " + str_or(c, "risk_note", "?") + "]";
      out += "\n";
    }
  }

  // Points-to memory def-use visibility (docs/POINTSTO.md). Absent from
  // pre-points-to reports; skipped silently then.
  if (const Json* memory = device.find("memory_flow");
      memory != nullptr && memory->is_object()) {
    const Json* rate = memory->find("resolution_rate");
    out += support::format(
        "\nmemory flow: %d/%d loads resolved (%.1f%%), %d via stores, "
        "%d stores (%d never loaded), %d unresolved-load terminations\n",
        int_or(*memory, "loads_resolved"), int_or(*memory, "loads_total"),
        (rate != nullptr && rate->is_number() ? rate->as_number() : 1.0) *
            100.0,
        int_or(*memory, "loads_with_stores"),
        int_or(*memory, "stores_total"),
        int_or(*memory, "stores_never_loaded"),
        int_or(*memory, "memory_terminations"));
  }

  // §IV-D keep/drop provenance per built MFT.
  if (const Json* decisions = device.find("mft_decisions");
      decisions != nullptr && decisions->is_array() &&
      decisions->size() > 0) {
    out += "\nmft decisions:\n";
    for (const Json& d : decisions->as_array()) {
      const Json* kept = d.find("kept");
      out += support::format(
          "  %s %s: %s (%s)\n", str_or(d, "delivery_address", "?").c_str(),
          str_or(d, "delivery_callee", "?").c_str(),
          kept != nullptr && kept->is_bool() && kept->as_bool() ? "kept"
                                                                : "dropped",
          str_or(d, "reason", "?").c_str());
    }
  }

  const Json* messages = device.find("messages");
  if (messages == nullptr || !messages->is_array())
    throw support::ParseError("report has no messages array");

  const bool by_ordinal = is_ordinal(options.field);
  const int want_ordinal = by_ordinal ? std::stoi(options.field) : -1;
  int ordinal = 0;
  int rendered = 0;
  for (const Json& message : messages->as_array()) {
    std::string header = support::format(
        "\nmessage %s via %s — %s",
        str_or(message, "delivery_address", "?").c_str(),
        str_or(message, "delivery_callee", "?").c_str(),
        str_or(message, "format", "?").c_str());
    const std::string endpoint = str_or(message, "endpoint_path");
    if (!endpoint.empty()) header += ", endpoint " + endpoint;
    const std::string host = str_or(message, "host");
    if (!host.empty()) header += ", host " + host;
    header += "\n";
    bool header_emitted = false;

    const Json* fields = message.find("fields");
    if (fields == nullptr || !fields->is_array()) continue;
    for (const Json& field : fields->as_array()) {
      const int this_ordinal = ordinal++;
      if (by_ordinal && this_ordinal != want_ordinal) continue;
      if (!by_ordinal && !options.field.empty() &&
          str_or(field, "key") != options.field)
        continue;
      if (!header_emitted) {
        out += header;
        header_emitted = true;
      }
      render_field(message, field, this_ordinal, out);
      ++rendered;
    }
  }

  if (rendered == 0 && !options.field.empty())
    throw support::ParseError("no field matches '" + options.field +
                              "' on device " +
                              std::to_string(options.device_id));
  if (rendered == 0) out += "\n(no reconstructed fields)\n";
  return out;
}

}  // namespace firmres::core
