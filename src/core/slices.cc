#include "core/slices.h"

#include <algorithm>
#include <cctype>
#include <set>

#include "analysis/valueflow/valueflow.h"
#include "ir/library.h"
#include "ir/printer.h"
#include "support/observability/metrics.h"
#include "support/strings.h"

namespace firmres::core {

namespace {
// §IV-C slice counters (Work-kind — docs/OBSERVABILITY.md).
support::metrics::Counter g_slices_emitted("slices.emitted",
                                           support::metrics::Kind::Work);
support::metrics::Counter g_multi_field_formats(
    "slices.multi_field_formats", support::metrics::Kind::Work);
}  // namespace

const char* leaf_role_name(LeafRole role) {
  switch (role) {
    case LeafRole::Field: return "Field";
    case LeafRole::FormatString: return "FormatString";
    case LeafRole::JsonKey: return "JsonKey";
    case LeafRole::Delimiter: return "Delimiter";
    case LeafRole::PathConst: return "PathConst";
    case LeafRole::Structural: return "Structural";
  }
  return "?";
}

namespace {

bool is_sprintf_like(const ir::PcodeOp* op) {
  return op != nullptr && op->opcode == ir::OpCode::Call &&
         (op->callee == "sprintf" || op->callee == "snprintf");
}

int format_arg_index(const ir::PcodeOp* op) {
  return op->callee == "snprintf" ? 2 : 1;
}

bool parent_is_json_add(const MftNode* parent) {
  return parent != nullptr && parent->op != nullptr &&
         parent->op->opcode == ir::OpCode::Call &&
         parent->op->callee.rfind("cJSON_Add", 0) == 0;
}

bool parent_is_file_read(const MftNode* parent) {
  if (parent == nullptr || parent->op == nullptr ||
      parent->op->opcode != ir::OpCode::Call)
    return false;
  return ir::LibraryModel::instance().is_kind(parent->op->callee,
                                              ir::LibKind::FileOp);
}

bool looks_like_path(const std::string& s) {
  if (s.empty()) return false;
  if (s[0] == '/' || s[0] == '?') return true;
  return s.rfind("http://", 0) == 0 || s.rfind("https://", 0) == 0;
}

bool looks_like_delimiter(const std::string& s) {
  if (s.empty() || s.size() > 2) return false;
  for (const char c : s)
    if (std::isalnum(static_cast<unsigned char>(c))) return false;
  return true;
}

/// Count '%'-conversions in a format string.
int conversion_count(const std::string& fmt) {
  int n = 0;
  for (std::size_t i = 0; i + 1 < fmt.size(); ++i) {
    if (fmt[i] == '%' && fmt[i + 1] != '%') ++n;
  }
  return n;
}

/// Parse the wire key out of a one-field format piece:
/// "uid=%s" → "uid";  "\"mac\":\"%s\"" → "mac". Empty when unparsable or
/// the piece holds several conversions.
std::string key_of_piece(std::string piece) {
  if (conversion_count(piece) != 1) return {};
  // Strip a leading "/path?" fused onto the first query piece.
  if (!piece.empty() && piece[0] == '/') {
    const auto q = piece.find('?');
    if (q != std::string::npos) piece.erase(0, q + 1);
  }
  // Strip surrounding JSON braces that ride along on first/last chunks.
  while (!piece.empty() && (piece.front() == '{' || piece.front() == '?' ||
                            piece.front() == '&'))
    piece.erase(piece.begin());
  while (!piece.empty() && piece.back() == '}') piece.pop_back();
  if (const auto colon = piece.find("\":"); colon != std::string::npos) {
    // "key":"%s"
    std::string key = piece.substr(0, colon);
    while (!key.empty() && key.front() == '"') key.erase(key.begin());
    return key;
  }
  if (const auto eq = piece.find('='); eq != std::string::npos) {
    const std::string key = piece.substr(0, eq);
    // Query pieces may carry a path prefix on the first chunk
    // ("?m=cloud&a=q&uid=%s" splits fine; a residual "/path?uid" does not).
    if (key.find('/') == std::string::npos &&
        key.find('%') == std::string::npos)
      return key;
  }
  return {};
}

}  // namespace

std::vector<std::string> SliceGenerator::split_format(const std::string& fmt,
                                                      char delimiter) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : fmt) {
    if (c == delimiter) {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

char SliceGenerator::identify_delimiter(const std::string& fmt) {
  double score = 0.0;
  return identify_delimiter_scored(fmt, &score);
}

char SliceGenerator::identify_delimiter_scored(const std::string& fmt,
                                               double* score_out) {
  static constexpr char kCandidates[] = {'&', ',', ';', '|', ' '};
  char best = '\0';
  double best_score = 0.0;
  for (const char cand : kCandidates) {
    const auto pieces = split_format(fmt, cand);
    if (pieces.size() < 2) continue;
    // Cohesion: mean pairwise similarity of the '%'-bearing pieces. A true
    // field delimiter yields many small look-alike "key=%s" pieces.
    std::vector<std::string> with_pct;
    for (const std::string& p : pieces)
      if (p.find('%') != std::string::npos) with_pct.push_back(p);
    if (with_pct.size() < 2) continue;
    double total = 0.0;
    int pairs = 0;
    for (std::size_t i = 0; i < with_pct.size(); ++i) {
      for (std::size_t j = i + 1; j < with_pct.size(); ++j) {
        total += support::lcs_similarity(with_pct[i], with_pct[j]);
        ++pairs;
      }
    }
    const double score =
        (total / pairs) * static_cast<double>(with_pct.size());
    if (score > best_score) {
      best_score = score;
      best = cand;
    }
  }
  *score_out = best_score;
  return best;
}

std::vector<std::vector<std::string>> SliceGenerator::cluster_pieces(
    const std::vector<std::string>& pieces, double threshold) {
  // Greedy average-link agglomeration: each piece joins the cluster whose
  // members are, on average, most similar to it, provided that average
  // clears the threshold. Average linkage avoids both the chaining
  // collapse of single-link (everything transitively merging through
  // medium-length keys at low thresholds) and the over-fragmentation of
  // complete-link (one long outlier key blocking an otherwise coherent
  // cluster).
  std::vector<std::vector<std::string>> clusters;
  for (const std::string& piece : pieces) {
    int best = -1;
    double best_avg = 0.0;
    for (std::size_t c = 0; c < clusters.size(); ++c) {
      double total = 0.0;
      for (const std::string& member : clusters[c])
        total += support::lcs_similarity(piece, member);
      const double avg = total / static_cast<double>(clusters[c].size());
      if (avg >= threshold && avg > best_avg) {
        best_avg = avg;
        best = static_cast<int>(c);
      }
    }
    if (best >= 0)
      clusters[static_cast<std::size_t>(best)].push_back(piece);
    else
      clusters.push_back({piece});
  }
  return clusters;
}

std::vector<std::string> SliceGenerator::field_pieces(
    const std::string& fmt) {
  char delim = identify_delimiter(fmt);
  if (delim == '\0') {
    // Single-field formats still need splitting so the key parser sees
    // "uid=%s" rather than "?m=cloud&a=q&uid=%s".
    for (const char cand : {'&', ','}) {
      if (split_format(fmt, cand).size() > 1) {
        delim = cand;
        break;
      }
    }
  }
  std::vector<std::string> out;
  if (delim == '\0') {
    if (fmt.find('%') != std::string::npos) out.push_back(fmt);
    return out;
  }
  for (const std::string& p : split_format(fmt, delim))
    if (p.find('%') != std::string::npos) out.push_back(p);
  return out;
}

std::string SliceGenerator::path_prefix(const std::string& fmt) {
  if (fmt.empty() || (fmt[0] != '/' && fmt[0] != '?')) return {};
  char delim = '&';
  if (split_format(fmt, '&').size() < 2) delim = ',';
  std::string prefix;
  for (const std::string& piece : split_format(fmt, delim)) {
    if (piece.find('%') != std::string::npos) {
      // "/path?key=%s": the path rides on the first conversion piece.
      if (prefix.empty() && piece[0] == '/') {
        const auto q = piece.find('?');
        if (q != std::string::npos) prefix = piece.substr(0, q);
      }
      break;
    }
    if (!prefix.empty()) prefix += delim;
    prefix += piece;
  }
  return prefix;
}

SliceGenerator::SliceGenerator(const Mft& mft, Options options)
    : options_(options) {
  std::set<std::string> seen_formats;
  for (const MftNode* leaf : mft.leaves()) {
    process_leaf(mft, leaf);
  }
  for (const FieldSlice& s : slices_) {
    if (s.role == LeafRole::FormatString && conversion_count(s.leaf->detail) > 1 &&
        seen_formats.insert(s.leaf->detail).second) {
      multi_field_formats_.push_back(s.leaf->detail);
    }
  }
  g_slices_emitted.add(slices_.size());
  g_multi_field_formats.add(multi_field_formats_.size());
}

void SliceGenerator::process_leaf(const Mft& mft, const MftNode* leaf) {
  const auto path = mft.path_to(leaf);
  const MftNode* parent = path.size() >= 2 ? path[path.size() - 2] : nullptr;

  FieldSlice slice;
  slice.leaf = leaf;

  // ---- Role classification -----------------------------------------------
  switch (leaf->kind) {
    case MftNodeKind::LeafSource:
      slice.role = LeafRole::Field;
      break;
    case MftNodeKind::LeafConst:
      slice.role = LeafRole::Field;  // incl. disassembly-noise constants
      break;
    case MftNodeKind::LeafParam:
      slice.role = leaf->detail == "undef" ? LeafRole::Structural
                                           : LeafRole::Field;
      break;
    case MftNodeKind::LeafOpaque: {
      const ir::LibFunction* lib =
          ir::LibraryModel::instance().find(leaf->detail);
      const bool structural =
          lib != nullptr && (lib->kind == ir::LibKind::JsonOp ||
                             lib->kind == ir::LibKind::Alloc ||
                             lib->kind == ir::LibKind::Other);
      // time()/rand() are LibKind::Other too, but their results genuinely
      // reach the message; the distinguishing property is whether the call
      // result carries request payload, which we approximate by whitelist.
      const bool payload_call =
          leaf->detail == "time" || leaf->detail == "rand";
      slice.role = (structural && !payload_call) ? LeafRole::Structural
                                                 : LeafRole::Field;
      break;
    }
    case MftNodeKind::LeafString: {
      const std::string& text = leaf->detail;
      if (parent_is_file_read(parent)) {
        slice.role = LeafRole::Field;  // <Variable = Function(Constant)>
      } else if (is_sprintf_like(parent != nullptr ? parent->op : nullptr) &&
                 leaf->src_index == format_arg_index(parent->op)) {
        slice.role = LeafRole::FormatString;
      } else if (parent_is_json_add(parent) && leaf->src_index == 1) {
        slice.role = LeafRole::JsonKey;
      } else if (looks_like_delimiter(text)) {
        slice.role = LeafRole::Delimiter;
      } else if (looks_like_path(text)) {
        slice.role = LeafRole::PathConst;
      } else {
        slice.role = LeafRole::Field;  // hardcoded value constants
      }
      break;
    }
    default:
      slice.role = LeafRole::Structural;
      break;
  }

  // ---- Key recovery -------------------------------------------------------
  // The assembling op (cJSON_Add / sprintf) may sit several path steps above
  // the leaf when the value is produced by a local accessor function, so we
  // scan the path for the nearest such ancestor; the node *below* it on the
  // path carries the argument-slot index.
  if (slice.role == LeafRole::Field) {
    for (std::size_t k = 0; k + 1 < path.size(); ++k) {
      const MftNode* assembler = path[k];
      const MftNode* slot = path[k + 1];
      if (assembler->op == nullptr) continue;
      if (parent_is_json_add(assembler)) {
        if (slot->src_index != 2) continue;  // only the value argument
        for (const auto& sib : assembler->children) {
          if (sib->src_index == 1 && sib->kind == MftNodeKind::LeafString) {
            slice.recovered_key = sib->detail;
            break;
          }
        }
        break;
      }
      if (is_sprintf_like(assembler->op)) {
        // Map the slot to the matching '%'-piece of the (split) format.
        const int fmt_index = format_arg_index(assembler->op);
        std::string fmt;
        for (const auto& sib : assembler->children) {
          if (sib->src_index == fmt_index &&
              sib->kind == MftNodeKind::LeafString) {
            fmt = sib->detail;
            break;
          }
        }
        // Non-literal format operand: recover its content from value flow
        // (a literal sibling is preferred — it is exactly what the op saw).
        if (fmt.empty() && options_.valueflow != nullptr &&
            assembler->fn != nullptr &&
            static_cast<std::size_t>(fmt_index) <
                assembler->op->inputs.size()) {
          const auto folded = options_.valueflow->string_of(
              assembler->fn,
              assembler->op->inputs[static_cast<std::size_t>(fmt_index)]);
          if (folded.has_value()) fmt = *folded;
        }
        if (fmt.empty()) continue;  // joining sprintf ("%s%s"): keep walking
        const std::vector<std::string> with_pct = field_pieces(fmt);
        const int position = slot->src_index - fmt_index - 1;
        if (position >= 0 &&
            static_cast<std::size_t>(position) < with_pct.size()) {
          const std::string piece =
              with_pct[static_cast<std::size_t>(position)];
          const std::string key = key_of_piece(piece);
          if (!key.empty() || conversion_count(piece) == 1) {
            slice.recovered_key = key;
            // The §IV-C separation step; disabled in the ablation, leaving
            // the full multi-field format in every value slice.
            if (options_.split_formats) slice.format_piece = piece;
            double cohesion = 0.0;
            slice.split_delimiter = identify_delimiter_scored(fmt, &cohesion);
            slice.split_score = cohesion;
            slice.split_pieces = static_cast<int>(with_pct.size());
            break;
          }
        }
      }
    }
  }

  // ---- Slice text ---------------------------------------------------------
  // A slice contains, per op on the path: the opcode/callee, the output,
  // the input the path flows through, and constant operands. Variable
  // operands of *other* fields (sibling arguments of the same sprintf) are
  // elided — they belong to other fields' slices and would leak their
  // keywords into this one (the noise problem §IV-C's separation step
  // addresses).
  std::vector<std::string> tokens;
  for (std::size_t pi = 0; pi < path.size(); ++pi) {
    const MftNode* node = path[pi];
    if (node->op == nullptr) continue;
    const MftNode* next = pi + 1 < path.size() ? path[pi + 1] : nullptr;
    std::string rendered;
    rendered += ir::opcode_name(node->op->opcode);
    if (node->op->opcode == ir::OpCode::Call) {
      rendered += " (Fun, ";
      rendered += node->op->callee;
      rendered += ")";
    }
    if (node->op->output.has_value()) {
      rendered +=
          " " + ir::render_enriched(*node->op->output, *node->fn) + " =";
    }
    for (std::size_t i = 0; i < node->op->inputs.size(); ++i) {
      const ir::VarNode& input = node->op->inputs[i];
      const bool relevant =
          next != nullptr && (input == next->var ||
                              static_cast<int>(i) == next->src_index);
      const bool constant = input.is_constant() || input.is_ram();
      if (!relevant && !constant) continue;
      std::string tok = ir::render_enriched(input, *node->fn);
      // §IV-C separation: substitute the field's own piece for the full
      // multi-field format string.
      if (!slice.format_piece.empty() && is_sprintf_like(node->op) &&
          static_cast<int>(i) == format_arg_index(node->op) &&
          input.is_ram()) {
        const auto text = mft.program->data().string_at(input.offset);
        if (text.has_value())
          tok = support::replace_all(tok, std::string(*text),
                                     slice.format_piece);
      }
      rendered += " " + tok;
    }
    if (tokens.empty() || tokens.back() != rendered)
      tokens.push_back(std::move(rendered));
  }
  slice.slice_text = support::join(tokens, " ; ");

  slices_.push_back(std::move(slice));
}

}  // namespace firmres::core
