#include "core/exec_identifier.h"

#include <algorithm>
#include <limits>
#include <set>

#include "analysis/forward_taint.h"
#include "analysis/predicates.h"
#include "analysis/valueflow/valueflow.h"
#include "ir/library.h"
#include "support/observability/metrics.h"
#include "support/observability/trace.h"

namespace firmres::core {

namespace {

using analysis::CallGraph;
using analysis::CallSite;

// §IV-A identification counters (Work-kind: functions of program content).
support::metrics::Counter g_programs_analyzed("identify.programs_analyzed",
                                              support::metrics::Kind::Work);
support::metrics::Counter g_handler_candidates("identify.handler_candidates",
                                               support::metrics::Kind::Work);
support::metrics::Counter g_device_cloud_verdicts(
    "identify.device_cloud_verdicts", support::metrics::Kind::Work);

std::vector<CallSite> sites_of_kind(const CallGraph& cg, ir::LibKind kind) {
  std::vector<CallSite> out;
  for (const std::string& name :
       ir::LibraryModel::instance().names_of_kind(kind)) {
    for (const CallSite& site : cg.callsites_of(name)) out.push_back(site);
  }
  std::sort(out.begin(), out.end(), [](const CallSite& a, const CallSite& b) {
    return a.op->address < b.op->address;
  });
  return out;
}

/// Candidate sequence for an anchor pair: functions on the call-graph path
/// plus their direct local callees (the parse/handle helpers).
std::vector<const ir::Function*> sequence_of(const CallGraph& cg,
                                             const ir::Function* a,
                                             const ir::Function* b) {
  std::vector<const ir::Function*> seq = cg.path(a, b);
  if (seq.empty()) seq = {a};
  std::set<const ir::Function*> seen(seq.begin(), seq.end());
  const std::size_t path_len = seq.size();
  for (std::size_t i = 0; i < path_len; ++i) {
    for (const ir::Function* callee : cg.callees(seq[i])) {
      if (seen.insert(callee).second) seq.push_back(callee);
    }
  }
  return seq;
}

/// Seeds for forward request taint at a fun_in callsite: the buffer
/// argument (per LibraryModel) and the call's return value.
std::vector<ir::VarNode> recv_seeds(const CallSite& site) {
  std::vector<ir::VarNode> seeds;
  const ir::LibFunction* lib =
      ir::LibraryModel::instance().find(site.op->callee);
  if (lib != nullptr && lib->recv_buf_arg >= 0 &&
      static_cast<std::size_t>(lib->recv_buf_arg) < site.op->inputs.size()) {
    seeds.push_back(site.op->inputs[static_cast<std::size_t>(lib->recv_buf_arg)]);
  }
  if (site.op->output.has_value()) seeds.push_back(*site.op->output);
  return seeds;
}

}  // namespace

ExecIdentification ExecutableIdentifier::analyze(
    const ir::Program& program) const {
  if (options_.devirtualize) {
    analysis::ValueFlow::Options vf_options;
    vf_options.substitutions = options_.substitutions;
    const analysis::ValueFlow vf(program, nullptr, vf_options);
    const CallGraph cg(program, vf);
    return analyze(program, cg);
  }
  const CallGraph cg(program);
  return analyze(program, cg);
}

ExecIdentification ExecutableIdentifier::analyze(
    const ir::Program& program, const analysis::CallGraph& cg) const {
  FIRMRES_SPAN("identify.program", "identify");
  g_programs_analyzed.add();
  ExecIdentification result;
  result.program = &program;

  const auto recvs = sites_of_kind(cg, ir::LibKind::RecvFn);
  const auto sends = sites_of_kind(cg, ir::LibKind::SendFn);
  if (recvs.empty() || sends.empty()) return result;

  for (const CallSite& recv : recvs) {
    // Pair with the closest fun_out callsite on the (undirected) call graph.
    const CallSite* best_send = nullptr;
    int best_dist = std::numeric_limits<int>::max();
    for (const CallSite& send : sends) {
      const int d = cg.distance(recv.caller, send.caller);
      if (d >= 0 && d < best_dist) {
        best_dist = d;
        best_send = &send;
      }
    }
    if (best_send == nullptr) continue;

    HandlerCandidate cand;
    cand.recv_site = recv;
    cand.send_site = *best_send;
    cand.sequence = sequence_of(cg, recv.caller, best_send->caller);

    if (options_.use_pf_scoring) {
      // Forward-taint the incoming request, then count predicate operands.
      analysis::ForwardTaint taint(program, cg, *recv.caller,
                                   recv_seeds(recv));
      for (const ir::Function* fn : cand.sequence) {
        if (options_.registry_branchless != nullptr &&
            options_.registry_branchless->count(fn) > 0) {
          // Certified branchless: no CBranch ⇒ no predicates ⇒ P_f is the
          // exact 0.0 the scan below would compute.
          cand.pf.push_back(0.0);
          continue;
        }
        const auto preds = analysis::predicates_of(*fn);
        std::size_t total = 0, from_request = 0;
        for (const analysis::Predicate& p : preds) {
          for (const ir::VarNode& operand : p.operands) {
            ++total;
            if (taint.is_tainted(fn, operand)) ++from_request;
          }
        }
        const double pf =
            total == 0 ? 0.0
                       : static_cast<double>(from_request) /
                             static_cast<double>(total);
        cand.pf.push_back(pf);
        if (pf > cand.score) {
          cand.score = pf;
          cand.parser = fn;
        }
      }
      cand.is_request_handler = cand.score >= options_.pf_threshold;
    } else {
      cand.score = 1.0;
      cand.is_request_handler = true;  // naive ablation mode
    }

    // Asynchronous check: the handler's fun_in caller must not be invoked
    // by direct control flow anywhere in the program.
    cand.asynchronous = !cg.has_direct_callers(recv.caller);

    result.candidates.push_back(std::move(cand));
  }

  for (const HandlerCandidate& cand : result.candidates) {
    const bool async_ok = !options_.require_async || cand.asynchronous;
    if (cand.is_request_handler && async_ok) {
      result.is_device_cloud = true;
      break;
    }
  }
  g_handler_candidates.add(result.candidates.size());
  if (result.is_device_cloud) g_device_cloud_verdicts.add();
  return result;
}

}  // namespace firmres::core
