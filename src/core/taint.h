// Backward static taint analysis — the MFT builder (§IV-B).
//
// Taint sources are the message-bearing arguments of delivery callsites
// (SSL_write, http_post, mqtt_publish, …); taint sinks are the
// single-information-source values the backward walk terminates at:
// constants, NVRAM/config/env/front-end reads, device-info getters, and
// opaque call results. Propagation is inter-procedural: parameters are
// traced to every callsite of their function ("all possible callsites of
// the caller would be analyzed"), and values returned by local calls are
// traced through the callee's RETURN inputs. Library calls use
// LibraryModel summaries; unknown imports overtaint (§V-C).
#pragma once

#include <vector>

#include "analysis/call_graph.h"
#include "core/mft.h"
#include "ir/program.h"

namespace firmres::analysis::pointsto {
class PointsTo;
}  // namespace firmres::analysis::pointsto

namespace firmres::core {

class MftBuilder {
 public:
  struct Options {
    int max_depth = 32;          ///< recursion bound on one path
    std::size_t max_nodes = 8192;  ///< per-MFT node budget
    int max_callsites = 4;       ///< parameter fanout bound
  };

  MftBuilder(const ir::Program& program,
             const analysis::CallGraph& call_graph);
  MftBuilder(const ir::Program& program, const analysis::CallGraph& call_graph,
             Options options);
  /// With a points-to memory def-use index, Loads continue into their
  /// reaching Stores instead of terminating (docs/POINTSTO.md).
  MftBuilder(const ir::Program& program, const analysis::CallGraph& call_graph,
             Options options, const analysis::pointsto::PointsTo* pointsto);

  /// One MFT per message-delivery callsite in the program, in callsite
  /// address order.
  std::vector<Mft> build_all() const;

  /// Build the MFT rooted at one delivery callsite.
  Mft build(const analysis::CallSite& delivery) const;

 private:
  const ir::Program& program_;
  const analysis::CallGraph& call_graph_;
  Options options_;
  const analysis::pointsto::PointsTo* pointsto_ = nullptr;
};

}  // namespace firmres::core
