#include "core/serve.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <istream>
#include <mutex>
#include <ostream>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "core/corpus_runner.h"
#include "core/report.h"
#include "firmware/serializer.h"
#include "support/json.h"
#include "support/observability/events.h"
#include "support/observability/metrics.h"
#include "support/strings.h"

namespace firmres::core {

namespace {

namespace events = support::events;
using support::Json;
using support::JsonObject;

// Serve-loop counters (Work-kind: command counts are what the client sent).
support::metrics::Counter g_jobs_accepted("serve.jobs_accepted",
                                          support::metrics::Kind::Work);
support::metrics::Counter g_jobs_done("serve.jobs_done",
                                      support::metrics::Kind::Work);
support::metrics::Counter g_bad_commands("serve.bad_commands",
                                         support::metrics::Kind::Work);

struct Job {
  std::uint64_t id = 0;
  std::vector<std::string> dirs;
};

namespace metrics = support::metrics;

std::uint64_t find_counter(const metrics::Snapshot& snap,
                           const std::string& name) {
  for (const auto& c : snap.counters)
    if (c.name == name) return c.value;
  return 0;
}

std::uint64_t find_gauge(const metrics::Snapshot& snap,
                         const std::string& name) {
  for (const auto& g : snap.gauges)
    if (g.name == name) return g.value;
  return 0;
}

/// Queue/worker state sampled into each heartbeat.
struct JobGauges {
  std::uint64_t accepted = 0;
  std::uint64_t done = 0;
  std::uint64_t in_flight = 0;
  std::uint64_t queue_depth = 0;
};

/// One "stats" heartbeat record (docs/OBSERVABILITY.md pins this schema;
/// tools/check_stats_schema.py and tests/test_serve.cc validate it).
/// `delta` is the interval's change over the full (Runtime-inclusive)
/// registry snapshot.
Json stats_record(std::uint64_t seq, double uptime_s, double interval_s,
                  const metrics::Snapshot& delta, const JobGauges& jobs) {
  const double safe_interval = interval_s > 1e-9 ? interval_s : 1e-9;

  Json doc{JsonObject{}};
  doc.set("event", "stats");
  doc.set("seq", static_cast<double>(seq));
  doc.set("uptime_s", uptime_s);
  doc.set("interval_s", interval_s);

  Json jobs_doc{JsonObject{}};
  jobs_doc.set("accepted", static_cast<double>(jobs.accepted));
  jobs_doc.set("done", static_cast<double>(jobs.done));
  jobs_doc.set("in_flight", static_cast<double>(jobs.in_flight));
  jobs_doc.set("queue_depth", static_cast<double>(jobs.queue_depth));
  doc.set("jobs", std::move(jobs_doc));

  const std::uint64_t devices =
      find_counter(delta, "pipeline.devices_analyzed");
  Json throughput{JsonObject{}};
  throughput.set("devices_analyzed", static_cast<double>(devices));
  throughput.set("devices_per_s",
                 static_cast<double>(devices) / safe_interval);
  doc.set("throughput", std::move(throughput));

  // Every phase.* latency histogram that saw traffic this interval gets a
  // percentile block — the "where does analysis time go" section.
  Json phases{JsonObject{}};
  for (const auto& h : delta.histograms) {
    if (h.count == 0) continue;
    if (h.name.rfind("phase.", 0) != 0) continue;
    Json entry{JsonObject{}};
    entry.set("count", static_cast<double>(h.count));
    entry.set("p50", metrics::histogram_percentile(h, 0.50));
    entry.set("p90", metrics::histogram_percentile(h, 0.90));
    entry.set("p99", metrics::histogram_percentile(h, 0.99));
    entry.set("max", metrics::histogram_percentile(h, 1.0));
    phases.set(h.name.substr(6), std::move(entry));
  }
  doc.set("phases", std::move(phases));

  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  for (const auto& c : delta.counters) {
    if (c.name.rfind("cache.", 0) != 0) continue;
    if (c.name.size() >= 5 && c.name.rfind("_hits") == c.name.size() - 5)
      hits += c.value;
    if (c.name.size() >= 7 && c.name.rfind("_misses") == c.name.size() - 7)
      misses += c.value;
  }
  Json cache{JsonObject{}};
  cache.set("hits", static_cast<double>(hits));
  cache.set("misses", static_cast<double>(misses));
  cache.set("hit_rate", hits + misses == 0
                            ? 0.0
                            : static_cast<double>(hits) /
                                  static_cast<double>(hits + misses));
  doc.set("cache", std::move(cache));

  Json pool{JsonObject{}};
  pool.set("queue_depth_max",
           static_cast<double>(find_gauge(delta, "pool.queue_depth_max")));
  doc.set("pool", std::move(pool));
  return doc;
}

}  // namespace

ServeSession::ServeSession(const SemanticsModel& model,
                           Pipeline::Options pipeline_options,
                           Options options)
    : pipeline_(model, pipeline_options), options_(options) {}

int ServeSession::run(std::istream& in, std::ostream& out) {
  std::mutex out_mu;
  const auto emit_line = [&](const Json& doc) {
    std::lock_guard<std::mutex> lock(out_mu);
    out << doc.dump(false) << "\n";
    out.flush();  // the client blocks on lines, not on buffers
  };

  // One worker drains the FIFO so a long job never blocks command intake —
  // the client can keep queueing firmware drops while analysis runs.
  std::mutex queue_mu;
  std::condition_variable queue_cv;
  std::deque<Job> queue;
  bool closing = false;
  int processed = 0;

  // Session-local views of queue/worker state for the stats heartbeat
  // (the registry counters are process-global and would bleed across
  // back-to-back sessions in one process, e.g. under test).
  std::atomic<std::uint64_t> session_accepted{0};
  std::atomic<std::uint64_t> session_done{0};
  std::atomic<std::uint64_t> session_in_flight{0};

  const auto process_job = [&](const Job& job) {
    std::vector<CorpusTask> tasks;
    tasks.reserve(job.dirs.size());
    for (std::size_t i = 0; i < job.dirs.size(); ++i) {
      const std::string dir = job.dirs[i];
      // The load happens inside the task: an unreadable or corrupt image
      // directory becomes a DeviceFailure with CorpusRunner's one-retry
      // isolation, exactly like a throwing analysis.
      tasks.push_back(CorpusTask{
          static_cast<int>(i), [this, dir](support::ThreadPool* pool) {
            const fw::FirmwareImage image = fw::load_image(dir);
            return pipeline_.analyze(image, pool);
          }});
    }
    CorpusRunner::Options runner_options;
    runner_options.jobs = options_.jobs;
    runner_options.retry_failed = options_.retry_failed;
    const CorpusRunner runner(pipeline_, runner_options);
    const CorpusResult result = runner.run_tasks(tasks);

    // Task ids are submission indices, so analyses come back in submission
    // order; the k-th analysis belongs to the k-th non-failed directory.
    std::set<int> failed;
    for (const DeviceFailure& f : result.failures) failed.insert(f.device_id);
    std::size_t next = 0;
    for (std::size_t i = 0; i < job.dirs.size(); ++i) {
      if (failed.count(static_cast<int>(i)) != 0) continue;
      if (next >= result.analyses.size()) break;
      const DeviceAnalysis& analysis = result.analyses[next++];
      emit_line(Json(JsonObject{
          {"event", Json("report")},
          {"job", Json(static_cast<std::int64_t>(job.id))},
          {"image", Json(job.dirs[i])},
          {"device", Json(analysis.device_id)},
          {"report", analysis_to_json(analysis, /*include_timings=*/false)},
      }));
    }
    for (const DeviceFailure& f : result.failures) {
      const std::size_t idx = static_cast<std::size_t>(f.device_id);
      emit_line(Json(JsonObject{
          {"event", Json("device_error")},
          {"job", Json(static_cast<std::int64_t>(job.id))},
          {"image",
           Json(idx < job.dirs.size() ? job.dirs[idx] : std::string())},
          {"attempts", Json(f.attempts)},
          {"error", Json(f.error)},
      }));
    }
    if (options_.stream_events && events::enabled()) {
      for (const events::Event& e : events::collect()) {
        emit_line(Json(JsonObject{
            {"event", Json("analysis_event")},
            {"job", Json(static_cast<std::int64_t>(job.id))},
            {"data", Json::parse(events::to_json_line(e))},
        }));
      }
      events::clear();  // next job streams only its own events
    }
    emit_line(Json(JsonObject{
        {"event", Json("done")},
        {"job", Json(static_cast<std::int64_t>(job.id))},
        {"reports",
         Json(static_cast<std::int64_t>(result.analyses.size()))},
        {"failures",
         Json(static_cast<std::int64_t>(result.failures.size()))},
    }));
    g_jobs_done.add();
    session_done.fetch_add(1, std::memory_order_relaxed);
  };

  std::thread worker([&] {
    for (;;) {
      Job job;
      {
        std::unique_lock<std::mutex> lock(queue_mu);
        queue_cv.wait(lock, [&] { return closing || !queue.empty(); });
        if (queue.empty()) return;  // closing and fully drained
        job = std::move(queue.front());
        queue.pop_front();
      }
      session_in_flight.store(1, std::memory_order_relaxed);
      process_job(job);
      session_in_flight.store(0, std::memory_order_relaxed);
      ++processed;  // worker-only write; main reads after join()
    }
  });

  emit_line(Json(JsonObject{
      {"event", Json("ready")},
      {"format", Json("firmres-serve")},
      {"version", Json(1)},
  }));

  // The stats thread snapshots the registry on its own cadence and emits
  // interval deltas. It keeps the previous snapshot privately, so the
  // main thread only signals shutdown; the final (tail) tick is emitted
  // by the thread itself on its way out, before "bye".
  std::mutex stats_mu;
  std::condition_variable stats_cv;
  bool stats_stop = false;
  std::thread stats_thread;
  if (options_.stats_interval_s > 0.0) {
    stats_thread = std::thread([&] {
      using clock = std::chrono::steady_clock;
      const auto session_start = clock::now();
      auto last_tick = session_start;
      metrics::Snapshot prev = metrics::snapshot(/*include_runtime=*/true);
      std::uint64_t seq = 0;
      for (;;) {
        bool stopping;
        {
          std::unique_lock<std::mutex> lock(stats_mu);
          stopping = stats_cv.wait_for(
              lock,
              std::chrono::duration<double>(options_.stats_interval_s),
              [&] { return stats_stop; });
        }
        const auto now = clock::now();
        const double interval_s =
            std::chrono::duration<double>(now - last_tick).count();
        const double uptime_s =
            std::chrono::duration<double>(now - session_start).count();
        metrics::Snapshot cur = metrics::snapshot(/*include_runtime=*/true);
        JobGauges jobs;
        jobs.accepted = session_accepted.load(std::memory_order_relaxed);
        jobs.done = session_done.load(std::memory_order_relaxed);
        jobs.in_flight = session_in_flight.load(std::memory_order_relaxed);
        {
          std::lock_guard<std::mutex> lock(queue_mu);
          jobs.queue_depth = queue.size();
        }
        emit_line(stats_record(++seq, uptime_s, interval_s, cur.delta(prev),
                               jobs));
        prev = std::move(cur);
        last_tick = now;
        if (stopping) return;
      }
    });
  }

  std::uint64_t next_job = 0;
  std::string line;
  while (std::getline(in, line)) {
    const std::vector<std::string> tokens = support::split_any(line, " \t\r");
    if (tokens.empty()) continue;
    const std::string& cmd = tokens[0];
    if (cmd == "quit") break;
    if (cmd == "ping") {
      emit_line(Json(JsonObject{{"event", Json("pong")}}));
      continue;
    }
    if (cmd == "analyze") {
      if (tokens.size() < 2) {
        g_bad_commands.add();
        emit_line(Json(JsonObject{
            {"event", Json("error")},
            {"error", Json("analyze requires at least one image directory")},
        }));
        continue;
      }
      Job job;
      job.id = ++next_job;
      job.dirs.assign(tokens.begin() + 1, tokens.end());
      g_jobs_accepted.add();
      session_accepted.fetch_add(1, std::memory_order_relaxed);
      emit_line(Json(JsonObject{
          {"event", Json("accepted")},
          {"job", Json(static_cast<std::int64_t>(job.id))},
          {"images", Json(static_cast<std::int64_t>(job.dirs.size()))},
      }));
      {
        std::lock_guard<std::mutex> lock(queue_mu);
        queue.push_back(std::move(job));
      }
      queue_cv.notify_one();
      continue;
    }
    g_bad_commands.add();
    emit_line(Json(JsonObject{
        {"event", Json("error")},
        {"error", Json("unknown command: " + cmd)},
    }));
  }

  {
    std::lock_guard<std::mutex> lock(queue_mu);
    closing = true;
  }
  queue_cv.notify_one();
  worker.join();
  if (stats_thread.joinable()) {
    {
      std::lock_guard<std::mutex> lock(stats_mu);
      stats_stop = true;
    }
    stats_cv.notify_one();
    stats_thread.join();  // emits the final tail tick on its way out
  }
  emit_line(Json(JsonObject{
      {"event", Json("bye")},
      {"jobs", Json(processed)},
  }));
  return processed;
}

}  // namespace firmres::core
