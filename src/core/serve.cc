#include "core/serve.h"

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <istream>
#include <mutex>
#include <ostream>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "core/corpus_runner.h"
#include "core/report.h"
#include "firmware/serializer.h"
#include "support/json.h"
#include "support/observability/events.h"
#include "support/observability/metrics.h"
#include "support/strings.h"

namespace firmres::core {

namespace {

namespace events = support::events;
using support::Json;
using support::JsonObject;

// Serve-loop counters (Work-kind: command counts are what the client sent).
support::metrics::Counter g_jobs_accepted("serve.jobs_accepted",
                                          support::metrics::Kind::Work);
support::metrics::Counter g_jobs_done("serve.jobs_done",
                                      support::metrics::Kind::Work);
support::metrics::Counter g_bad_commands("serve.bad_commands",
                                         support::metrics::Kind::Work);

struct Job {
  std::uint64_t id = 0;
  std::vector<std::string> dirs;
};

}  // namespace

ServeSession::ServeSession(const SemanticsModel& model,
                           Pipeline::Options pipeline_options,
                           Options options)
    : pipeline_(model, pipeline_options), options_(options) {}

int ServeSession::run(std::istream& in, std::ostream& out) {
  std::mutex out_mu;
  const auto emit_line = [&](const Json& doc) {
    std::lock_guard<std::mutex> lock(out_mu);
    out << doc.dump(false) << "\n";
    out.flush();  // the client blocks on lines, not on buffers
  };

  // One worker drains the FIFO so a long job never blocks command intake —
  // the client can keep queueing firmware drops while analysis runs.
  std::mutex queue_mu;
  std::condition_variable queue_cv;
  std::deque<Job> queue;
  bool closing = false;
  int processed = 0;

  const auto process_job = [&](const Job& job) {
    std::vector<CorpusTask> tasks;
    tasks.reserve(job.dirs.size());
    for (std::size_t i = 0; i < job.dirs.size(); ++i) {
      const std::string dir = job.dirs[i];
      // The load happens inside the task: an unreadable or corrupt image
      // directory becomes a DeviceFailure with CorpusRunner's one-retry
      // isolation, exactly like a throwing analysis.
      tasks.push_back(CorpusTask{
          static_cast<int>(i), [this, dir](support::ThreadPool* pool) {
            const fw::FirmwareImage image = fw::load_image(dir);
            return pipeline_.analyze(image, pool);
          }});
    }
    CorpusRunner::Options runner_options;
    runner_options.jobs = options_.jobs;
    runner_options.retry_failed = options_.retry_failed;
    const CorpusRunner runner(pipeline_, runner_options);
    const CorpusResult result = runner.run_tasks(tasks);

    // Task ids are submission indices, so analyses come back in submission
    // order; the k-th analysis belongs to the k-th non-failed directory.
    std::set<int> failed;
    for (const DeviceFailure& f : result.failures) failed.insert(f.device_id);
    std::size_t next = 0;
    for (std::size_t i = 0; i < job.dirs.size(); ++i) {
      if (failed.count(static_cast<int>(i)) != 0) continue;
      if (next >= result.analyses.size()) break;
      const DeviceAnalysis& analysis = result.analyses[next++];
      emit_line(Json(JsonObject{
          {"event", Json("report")},
          {"job", Json(static_cast<std::int64_t>(job.id))},
          {"image", Json(job.dirs[i])},
          {"device", Json(analysis.device_id)},
          {"report", analysis_to_json(analysis, /*include_timings=*/false)},
      }));
    }
    for (const DeviceFailure& f : result.failures) {
      const std::size_t idx = static_cast<std::size_t>(f.device_id);
      emit_line(Json(JsonObject{
          {"event", Json("device_error")},
          {"job", Json(static_cast<std::int64_t>(job.id))},
          {"image",
           Json(idx < job.dirs.size() ? job.dirs[idx] : std::string())},
          {"attempts", Json(f.attempts)},
          {"error", Json(f.error)},
      }));
    }
    if (options_.stream_events && events::enabled()) {
      for (const events::Event& e : events::collect()) {
        emit_line(Json(JsonObject{
            {"event", Json("analysis_event")},
            {"job", Json(static_cast<std::int64_t>(job.id))},
            {"data", Json::parse(events::to_json_line(e))},
        }));
      }
      events::clear();  // next job streams only its own events
    }
    emit_line(Json(JsonObject{
        {"event", Json("done")},
        {"job", Json(static_cast<std::int64_t>(job.id))},
        {"reports",
         Json(static_cast<std::int64_t>(result.analyses.size()))},
        {"failures",
         Json(static_cast<std::int64_t>(result.failures.size()))},
    }));
    g_jobs_done.add();
  };

  std::thread worker([&] {
    for (;;) {
      Job job;
      {
        std::unique_lock<std::mutex> lock(queue_mu);
        queue_cv.wait(lock, [&] { return closing || !queue.empty(); });
        if (queue.empty()) return;  // closing and fully drained
        job = std::move(queue.front());
        queue.pop_front();
      }
      process_job(job);
      ++processed;  // worker-only write; main reads after join()
    }
  });

  emit_line(Json(JsonObject{
      {"event", Json("ready")},
      {"format", Json("firmres-serve")},
      {"version", Json(1)},
  }));

  std::uint64_t next_job = 0;
  std::string line;
  while (std::getline(in, line)) {
    const std::vector<std::string> tokens = support::split_any(line, " \t\r");
    if (tokens.empty()) continue;
    const std::string& cmd = tokens[0];
    if (cmd == "quit") break;
    if (cmd == "ping") {
      emit_line(Json(JsonObject{{"event", Json("pong")}}));
      continue;
    }
    if (cmd == "analyze") {
      if (tokens.size() < 2) {
        g_bad_commands.add();
        emit_line(Json(JsonObject{
            {"event", Json("error")},
            {"error", Json("analyze requires at least one image directory")},
        }));
        continue;
      }
      Job job;
      job.id = ++next_job;
      job.dirs.assign(tokens.begin() + 1, tokens.end());
      g_jobs_accepted.add();
      emit_line(Json(JsonObject{
          {"event", Json("accepted")},
          {"job", Json(static_cast<std::int64_t>(job.id))},
          {"images", Json(static_cast<std::int64_t>(job.dirs.size()))},
      }));
      {
        std::lock_guard<std::mutex> lock(queue_mu);
        queue.push_back(std::move(job));
      }
      queue_cv.notify_one();
      continue;
    }
    g_bad_commands.add();
    emit_line(Json(JsonObject{
        {"event", Json("error")},
        {"error", Json("unknown command: " + cmd)},
    }));
  }

  {
    std::lock_guard<std::mutex> lock(queue_mu);
    closing = true;
  }
  queue_cv.notify_one();
  worker.join();
  emit_line(Json(JsonObject{
      {"event", Json("bye")},
      {"jobs", Json(processed)},
  }));
  return processed;
}

}  // namespace firmres::core
