// Machine-readable analysis reports.
//
// FIRMRES's output is "testing cues and alarms of incorrect device-cloud
// messages" (§IV, Fig. 3). This module renders a DeviceAnalysis — the
// reconstructed messages with their semantic annotations plus the form-check
// alarms — as a JSON document an analyst's tooling (or the bundled prober)
// can consume.
#pragma once

#include "core/pipeline.h"
#include "support/json.h"

namespace firmres::core {

/// One reconstructed message (fields in recovered order, semantics, value
/// sources, hard-coded markers).
support::Json message_to_json(const ReconstructedMessage& message);

/// Per-device component inventory as a JSON array (docs/COMPONENTS.md) —
/// the `components` block of the report, also emitted standalone by
/// `firmres components`.
support::Json components_to_json(
    const std::vector<analysis::components::ComponentHit>& components);

/// The full report: executable verdict, messages, LAN-discard count,
/// flaw alarms, and phase timings. `include_timings = false` omits the
/// timings block — the only run-to-run varying part — yielding a document
/// that is byte-identical across repeated and parallel runs (the
/// CorpusRunner determinism guarantee).
support::Json analysis_to_json(const DeviceAnalysis& analysis,
                               bool include_timings = true);

}  // namespace firmres::core
