#include "core/report.h"

#include "support/strings.h"

namespace firmres::core {

namespace {
using support::Json;
using support::JsonArray;
using support::JsonObject;
}  // namespace

support::Json message_to_json(const ReconstructedMessage& message) {
  Json m{JsonObject{}};
  m.set("executable", message.executable);
  m.set("delivery_address",
        support::format("0x%llx",
                        static_cast<unsigned long long>(
                            message.delivery_address)));
  m.set("delivery_callee", message.delivery_callee);
  m.set("endpoint_path", message.endpoint_path);
  m.set("host", message.host);
  m.set("format", std::string(fw::wire_format_name(message.format)));
  JsonArray fields;
  for (const ReconstructedField& f : message.fields) {
    Json fo{JsonObject{}};
    fo.set("key", f.key);
    fo.set("semantics", std::string(fw::primitive_name(f.semantics)));
    fo.set("source", std::string(field_value_source_name(f.source)));
    fo.set("source_detail", f.source_detail);
    if (!f.const_value.empty()) fo.set("const_value", f.const_value);
    fo.set("hardcoded", f.hardcoded);

    // Full derivation record (docs/PROVENANCE.md) — everything `firmres
    // explain` needs to render callsite → taint path → source → label from
    // the report alone. Work-derived only, so byte-identical at any --jobs.
    const FieldProvenance& p = f.provenance;
    Json prov{JsonObject{}};
    prov.set("termination", p.termination);
    JsonArray visited;
    for (const std::string& fn : p.visited_functions)
      visited.emplace_back(fn);
    prov.set("visited_functions", Json(std::move(visited)));
    prov.set("devirt_crossings", p.devirt_crossings);
    prov.set("callsite_crossings", p.callsite_crossings);
    // Emitted only when a Load→Store hop was taken, so reports over
    // memory-free firmware stay byte-identical to pre-points-to ones.
    if (p.memory_crossings > 0)
      prov.set("memory_crossings", p.memory_crossings);
    prov.set("taint_depth", p.taint_depth);
    JsonArray steps;
    for (const std::string& step : p.construction_path)
      steps.emplace_back(step);
    prov.set("construction_path", Json(std::move(steps)));
    if (p.split_pieces > 0) {
      Json split{JsonObject{}};
      split.set("format_piece", p.format_piece);
      split.set("delimiter", p.split_delimiter);
      split.set("score", p.split_score);
      split.set("pieces", p.split_pieces);
      prov.set("split", std::move(split));
    }
    prov.set("model", p.model);
    Json scores{JsonObject{}};
    for (std::size_t c = 0; c < p.label_scores.size(); ++c)
      scores.set(std::string(fw::primitive_name(
                     static_cast<fw::Primitive>(c))),
                 p.label_scores[c]);
    prov.set("label_scores", std::move(scores));
    prov.set("margin", p.margin);
    if (!p.registry_components.empty()) {
      JsonArray components;
      for (const std::string& label : p.registry_components)
        components.emplace_back(label);
      prov.set("registry_components", Json(std::move(components)));
    }
    fo.set("provenance", std::move(prov));

    fields.push_back(std::move(fo));
  }
  m.set("fields", Json(std::move(fields)));
  m.set("opaque_terminations", message.opaque_terminations);
  m.set("param_terminations", message.param_terminations);
  if (message.memory_terminations > 0)
    m.set("memory_terminations", message.memory_terminations);
  return m;
}

support::Json components_to_json(
    const std::vector<analysis::components::ComponentHit>& components) {
  JsonArray out;
  for (const analysis::components::ComponentHit& hit : components) {
    Json c{JsonObject{}};
    c.set("name", hit.name);
    c.set("version", hit.version);
    c.set("risky", hit.risky);
    if (hit.risky) c.set("risk_note", hit.risk_note);
    c.set("matched_functions", static_cast<int>(hit.matched_functions));
    c.set("total_functions", static_cast<int>(hit.total_functions));
    c.set("unique_matches", static_cast<int>(hit.unique_matches));
    c.set("substituted_functions",
          static_cast<int>(hit.substituted_functions));
    c.set("version_ambiguous", hit.version_ambiguous);
    JsonArray names;
    for (const std::string& n : hit.matched_names) names.emplace_back(n);
    c.set("matched_names", Json(std::move(names)));
    out.push_back(std::move(c));
  }
  return Json(std::move(out));
}

support::Json analysis_to_json(const DeviceAnalysis& analysis,
                               bool include_timings) {
  Json doc{JsonObject{}};
  doc.set("format", "firmres-report");
  doc.set("device_id", analysis.device_id);
  doc.set("device_cloud_executable", analysis.device_cloud_executable);
  doc.set("discarded_lan_messages", analysis.discarded_lan);

  JsonArray messages;
  for (const ReconstructedMessage& m : analysis.messages)
    messages.push_back(message_to_json(m));
  doc.set("messages", Json(std::move(messages)));

  // Keep/drop provenance per built MFT (§IV-D LAN filter audit trail).
  JsonArray decisions;
  for (const MftDecision& d : analysis.mft_decisions) {
    Json o{JsonObject{}};
    o.set("delivery_address",
          support::format("0x%llx",
                          static_cast<unsigned long long>(
                              d.delivery_address)));
    o.set("delivery_callee", d.delivery_callee);
    o.set("kept", d.kept);
    o.set("reason", d.reason);
    decisions.push_back(std::move(o));
  }
  doc.set("mft_decisions", Json(std::move(decisions)));

  JsonArray alarms;
  for (const FlawReport& flaw : analysis.flaws) {
    Json a{JsonObject{}};
    a.set("message_index", static_cast<double>(flaw.message_index));
    a.set("kind", std::string(flaw_kind_name(flaw.kind)));
    a.set("detail", flaw.detail);
    JsonArray present;
    for (const fw::Primitive p : flaw.present)
      present.emplace_back(std::string(fw::primitive_name(p)));
    a.set("primitives_present", Json(std::move(present)));
    alarms.push_back(std::move(a));
  }
  doc.set("alarms", Json(std::move(alarms)));

  Json value_flow{JsonObject{}};
  value_flow.set("indirect_calls_total", analysis.indirect_calls_total);
  value_flow.set("indirect_calls_resolved", analysis.indirect_calls_resolved);
  value_flow.set("resolution_rate",
                 analysis.indirect_calls_total == 0
                     ? 1.0
                     : static_cast<double>(analysis.indirect_calls_resolved) /
                           analysis.indirect_calls_total);
  value_flow.set("opaque_terminations", analysis.opaque_terminations);
  value_flow.set("param_terminations", analysis.param_terminations);
  doc.set("value_flow", std::move(value_flow));

  // Points-to memory def-use visibility (docs/POINTSTO.md) — the memory
  // analogue of the value_flow block above. Always present: zero counters
  // on memory-free firmware still tell the analyst the pass ran.
  Json memory_flow{JsonObject{}};
  memory_flow.set("loads_total",
                  static_cast<std::int64_t>(analysis.memory_flow.loads_total));
  memory_flow.set(
      "loads_resolved",
      static_cast<std::int64_t>(analysis.memory_flow.loads_resolved));
  memory_flow.set(
      "loads_with_stores",
      static_cast<std::int64_t>(analysis.memory_flow.loads_with_stores));
  memory_flow.set(
      "stores_total",
      static_cast<std::int64_t>(analysis.memory_flow.stores_total));
  memory_flow.set(
      "stores_never_loaded",
      static_cast<std::int64_t>(analysis.memory_flow.stores_never_loaded));
  memory_flow.set("resolution_rate",
                  analysis.memory_flow.loads_total == 0
                      ? 1.0
                      : static_cast<double>(analysis.memory_flow.loads_resolved) /
                            static_cast<double>(analysis.memory_flow.loads_total));
  memory_flow.set("memory_terminations", analysis.memory_terminations);
  doc.set("memory_flow", std::move(memory_flow));

  // Per-device component inventory (docs/COMPONENTS.md). Present only when
  // a registry was supplied and matched, so registry-less reports are
  // byte-identical to pre-registry ones.
  if (!analysis.components.empty())
    doc.set("components", components_to_json(analysis.components));

  // Work metrics only (docs/OBSERVABILITY.md) — deterministic at any jobs
  // level, so the block survives the timings-omitted byte comparison.
  Json metrics{JsonObject{}};
  for (const auto& [name, value] : analysis.metrics)
    metrics.set(name, static_cast<double>(value));
  doc.set("metrics", std::move(metrics));

  if (include_timings) {
    Json timings{JsonObject{}};
    timings.set("pinpoint_s", analysis.timings.pinpoint_s);
    timings.set("fields_s", analysis.timings.fields_s);
    timings.set("semantics_s", analysis.timings.semantics_s);
    timings.set("concat_s", analysis.timings.concat_s);
    timings.set("check_s", analysis.timings.check_s);
    timings.set("total_s", analysis.timings.total_s());
    timings.set("cpu_total_s", analysis.timings.cpu_total_s);
    doc.set("timings", std::move(timings));
  }
  return doc;
}

}  // namespace firmres::core
