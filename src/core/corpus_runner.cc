#include "core/corpus_runner.h"

#include <algorithm>
#include <numeric>
#include <optional>

#include "support/timing.h"

namespace firmres::core {

CorpusResult CorpusRunner::run(
    const std::vector<fw::FirmwareImage>& images) const {
  std::vector<const fw::FirmwareImage*> pointers;
  pointers.reserve(images.size());
  for (const fw::FirmwareImage& image : images) pointers.push_back(&image);
  return run(pointers);
}

CorpusResult CorpusRunner::run(
    const std::vector<const fw::FirmwareImage*>& images) const {
  std::vector<CorpusTask> tasks;
  tasks.reserve(images.size());
  for (const fw::FirmwareImage* image : images) {
    tasks.push_back(CorpusTask{
        image->profile.id, [this, image](support::ThreadPool* pool) {
          return pipeline_.analyze(*image, pool);
        }});
  }
  return run_tasks(tasks);
}

CorpusResult CorpusRunner::run_tasks(
    const std::vector<CorpusTask>& tasks) const {
  const support::WallTimer wall;
  CorpusResult result;

  // Completion order is whatever the scheduler produces; each task writes
  // its own slot and aggregation below re-imposes device-id order.
  std::vector<std::optional<DeviceAnalysis>> analyses(tasks.size());
  std::vector<std::optional<DeviceFailure>> failures(tasks.size());
  const auto run_one = [&](std::size_t i, support::ThreadPool* pool) {
    try {
      analyses[i] = tasks[i].run(pool);
    } catch (const std::exception& e) {
      failures[i] = DeviceFailure{tasks[i].device_id, e.what()};
    } catch (...) {
      failures[i] = DeviceFailure{tasks[i].device_id, "unknown error"};
    }
  };

  const int jobs = options_.jobs == 0
                       ? static_cast<int>(support::ThreadPool::default_parallelism())
                       : options_.jobs;
  if (jobs <= 1 || tasks.size() <= 1) {
    for (std::size_t i = 0; i < tasks.size(); ++i) run_one(i, nullptr);
  } else {
    support::ThreadPool pool(static_cast<std::size_t>(jobs));
    support::parallel_for(pool, tasks.size(), [&](std::size_t i) {
      run_one(i, options_.parallel_programs ? &pool : nullptr);
    });
  }

  std::vector<std::size_t> order(tasks.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return tasks[a].device_id < tasks[b].device_id;
  });
  for (const std::size_t i : order) {
    if (analyses[i].has_value()) {
      const PhaseTimings& t = analyses[i]->timings;
      result.aggregate.pinpoint_s += t.pinpoint_s;
      result.aggregate.fields_s += t.fields_s;
      result.aggregate.semantics_s += t.semantics_s;
      result.aggregate.concat_s += t.concat_s;
      result.aggregate.check_s += t.check_s;
      result.aggregate.cpu_total_s += t.cpu_total_s;
      result.cpu_s += t.cpu_total_s;
      result.analyses.push_back(std::move(*analyses[i]));
    } else if (failures[i].has_value()) {
      result.failures.push_back(std::move(*failures[i]));
    }
  }
  result.wall_s = wall.elapsed_s();
  return result;
}

}  // namespace firmres::core
