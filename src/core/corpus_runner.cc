#include "core/corpus_runner.h"

#include <algorithm>
#include <numeric>
#include <optional>

#include "support/observability/metrics.h"
#include "support/observability/trace.h"
#include "support/timing.h"

namespace firmres::core {

namespace {
// Corpus-level outcome counters (Work-kind: the retry schedule is a pure
// function of which tasks throw, so counts match at any jobs level).
support::metrics::Counter g_devices_completed("corpus.devices_completed",
                                              support::metrics::Kind::Work);
support::metrics::Counter g_devices_failed("corpus.devices_failed",
                                           support::metrics::Kind::Work);
support::metrics::Counter g_device_retries("corpus.device_retries",
                                           support::metrics::Kind::Work);
}  // namespace

CorpusResult CorpusRunner::run(
    const std::vector<fw::FirmwareImage>& images) const {
  std::vector<const fw::FirmwareImage*> pointers;
  pointers.reserve(images.size());
  for (const fw::FirmwareImage& image : images) pointers.push_back(&image);
  return run(pointers);
}

CorpusResult CorpusRunner::run(
    const std::vector<const fw::FirmwareImage*>& images) const {
  std::vector<CorpusTask> tasks;
  tasks.reserve(images.size());
  for (const fw::FirmwareImage* image : images) {
    tasks.push_back(CorpusTask{
        image->profile.id, [this, image](support::ThreadPool* pool) {
          return pipeline_.analyze(*image, pool);
        }});
  }
  return run_tasks(tasks);
}

CorpusResult CorpusRunner::run_tasks(
    const std::vector<CorpusTask>& tasks) const {
  FIRMRES_SPAN("corpus.run", "corpus");
  const support::WallTimer wall;
  CorpusResult result;

  // Completion order is whatever the scheduler produces; each task writes
  // its own slot and aggregation below re-imposes device-id order. A
  // throwing attempt assigns only the failure slot — its partially
  // accumulated DeviceAnalysis (timings included) is destroyed with the
  // stack, so a later retry cannot double-report the device.
  std::vector<std::optional<DeviceAnalysis>> analyses(tasks.size());
  std::vector<std::optional<DeviceFailure>> failures(tasks.size());
  const auto run_one = [&](std::size_t i, support::ThreadPool* pool,
                           int attempt) {
    FIRMRES_SPAN_DEVICE("corpus.device", "corpus", tasks[i].device_id);
    try {
      analyses[i] = tasks[i].run(pool);
      failures[i].reset();
    } catch (const std::exception& e) {
      failures[i] = DeviceFailure{tasks[i].device_id, e.what(), attempt};
    } catch (...) {
      failures[i] = DeviceFailure{tasks[i].device_id, "unknown error",
                                  attempt};
    }
    if (options_.on_device_done) {
      if (analyses[i].has_value())
        options_.on_device_done(tasks[i].device_id, true,
                                analyses[i]->timings);
      else
        options_.on_device_done(tasks[i].device_id, false, PhaseTimings{});
    }
  };

  const int jobs = options_.jobs == 0
                       ? static_cast<int>(support::ThreadPool::default_parallelism())
                       : options_.jobs;
  if (jobs <= 1 || tasks.size() <= 1) {
    for (std::size_t i = 0; i < tasks.size(); ++i) run_one(i, nullptr, 1);
  } else {
    support::ThreadPool pool(static_cast<std::size_t>(jobs));
    support::parallel_for(pool, tasks.size(), [&](std::size_t i) {
      run_one(i, options_.parallel_programs ? &pool : nullptr, 1);
    });
  }

  // Failure isolation retry: one sequential second attempt per failed
  // device, after the fan-out drained (a transient resource-pressure
  // failure retried while the pool is saturated would likely recur).
  if (options_.retry_failed) {
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      if (!failures[i].has_value()) continue;
      g_device_retries.add();
      run_one(i, nullptr, 2);
    }
  }

  std::vector<std::size_t> order(tasks.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return tasks[a].device_id < tasks[b].device_id;
  });
  for (const std::size_t i : order) {
    if (analyses[i].has_value()) {
      g_devices_completed.add();
      const PhaseTimings& t = analyses[i]->timings;
      result.aggregate.pinpoint_s += t.pinpoint_s;
      result.aggregate.fields_s += t.fields_s;
      result.aggregate.semantics_s += t.semantics_s;
      result.aggregate.concat_s += t.concat_s;
      result.aggregate.check_s += t.check_s;
      result.aggregate.cpu_total_s += t.cpu_total_s;
      result.cpu_s += t.cpu_total_s;
      result.analyses.push_back(std::move(*analyses[i]));
    } else if (failures[i].has_value()) {
      g_devices_failed.add();
      result.failures.push_back(std::move(*failures[i]));
    }
  }
  result.wall_s = wall.elapsed_s();
  return result;
}

}  // namespace firmres::core
