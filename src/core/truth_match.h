// Matching reconstructed fields against synthesizer ground truth.
//
// This is the mechanized form of the paper's manual confirmation ("We
// manually verified the reconstructed messages and confirmed that 1785 of
// these message fields are required", §V-C): a reconstructed field is
// confirmed when it corresponds to a field the synthesizer actually put in
// the message. Used by the evaluation harness (Table II) and the dataset
// auto-labeler's review step.
#pragma once

#include "core/reconstructor.h"
#include "firmware/message_spec.h"

namespace firmres::core {

/// Does this reconstructed field correspond to `spec` (wire key, source
/// key, hard-coded value, or derivation agreement)?
bool field_matches_spec(const ReconstructedField& field,
                        const fw::FieldSpec& spec);

/// Ground-truth primitive of a reconstructed field within its message's
/// spec: the primitive of the first unclaimed matching spec field, or None
/// for noise fields. (Single-field convenience used by the dataset
/// builder; Table II accounting uses its own used-flags loop to keep
/// one-to-one matching.)
fw::Primitive truth_primitive(const ReconstructedField& field,
                              const fw::MessageSpec& spec);

}  // namespace firmres::core
