#include "core/script_analyzer.h"

#include <map>

#include "support/hash.h"
#include "support/strings.h"

namespace firmres::core {

namespace {

/// Join backslash-continued lines ("curl … \\\n  -d …").
std::vector<std::string> logical_lines(const std::string& text) {
  std::vector<std::string> out;
  std::string current;
  for (const std::string& raw : support::split(text, '\n')) {
    std::string line(support::trim(raw));
    if (!line.empty() && line.back() == '\\') {
      line.pop_back();
      current += line + " ";
      continue;
    }
    current += line;
    if (!current.empty()) out.push_back(current);
    current.clear();
  }
  if (!current.empty()) out.push_back(current);
  return out;
}

/// First "-quoted or '-quoted span after position `from`.
std::optional<std::string> quoted_after(const std::string& line,
                                        std::size_t from) {
  for (std::size_t i = from; i < line.size(); ++i) {
    if (line[i] != '"' && line[i] != '\'') continue;
    const char quote = line[i];
    const auto end = line.find(quote, i + 1);
    if (end == std::string::npos) return std::nullopt;
    return line.substr(i + 1, end - i - 1);
  }
  return std::nullopt;
}

struct VarDef {
  FieldValueSource source = FieldValueSource::Opaque;
  std::string detail;  // nvram key / file path
};

/// "nvram get KEY" / "cat FILE" command substitution bodies.
std::optional<VarDef> parse_command(const std::string& cmd) {
  const auto tokens = support::split_any(cmd, " \t");
  if (tokens.size() >= 3 && tokens[0] == "nvram" && tokens[1] == "get")
    return VarDef{FieldValueSource::Nvram, tokens[2]};
  if (tokens.size() >= 2 && tokens[0] == "cat")
    return VarDef{FieldValueSource::FileRead, tokens[1]};
  return std::nullopt;
}

/// Shell `NAME=$(cmd)` definitions.
void collect_shell_vars(const std::string& line,
                        std::map<std::string, VarDef>& vars) {
  const auto eq = line.find("=$(");
  if (eq == std::string::npos) return;
  const std::string name = line.substr(0, eq);
  if (name.empty() || name.find(' ') != std::string::npos) return;
  const auto close = line.rfind(')');
  if (close == std::string::npos || close < eq + 3) return;
  if (const auto def = parse_command(line.substr(eq + 3, close - eq - 3)))
    vars["$" + name] = *def;
}

/// PHP `$name = shell_exec('cmd');` definitions.
void collect_php_vars(const std::string& line,
                      std::map<std::string, VarDef>& vars) {
  if (line.empty() || line[0] != '$') return;
  const auto eq = line.find('=');
  const auto exec = line.find("shell_exec(");
  if (eq == std::string::npos || exec == std::string::npos) return;
  const std::string name(support::trim(line.substr(0, eq)));
  const auto cmd = quoted_after(line, exec);
  if (!cmd.has_value()) return;
  if (const auto def = parse_command(*cmd)) vars[name] = *def;
}

/// Split a URL into host and path ("https://h/p" → h, /p).
bool split_url(const std::string& url, std::string& host, std::string& path) {
  for (const char* scheme : {"https://", "http://"}) {
    if (url.rfind(scheme, 0) != 0) continue;
    const std::string rest = url.substr(std::string(scheme).size());
    const auto slash = rest.find('/');
    host = slash == std::string::npos ? rest : rest.substr(0, slash);
    path = slash == std::string::npos ? "/" : rest.substr(slash);
    return true;
  }
  return false;
}

ReconstructedField make_field(const std::string& key, const VarDef& def,
                              const SemanticsModel& model,
                              const std::string& context) {
  ReconstructedField field;
  field.key = key;
  field.source = def.source;
  field.source_detail = def.detail;
  // Pseudo-slice: the script evidence in the enriched-token idiom so the
  // same classifier serves binaries and scripts.
  field.slice_text = support::format(
      "SCRIPT %s ; FIELD (Cons, \"%s\") ; SOURCE (Fun, %s) (Cons, \"%s\")",
      context.c_str(), key.c_str(),
      def.source == FieldValueSource::Nvram ? "nvram_get" : "read_file",
      def.detail.c_str());
  field.semantics = model.classify(field.slice_text);
  return field;
}

}  // namespace

std::vector<ReconstructedMessage> ScriptAnalyzer::analyze_script(
    const fw::FirmwareFile& file) const {
  std::vector<ReconstructedMessage> out;
  std::map<std::string, VarDef> vars;
  const bool php = file.path.find(".php") != std::string::npos;

  // PHP array('k' => $v, …) field templates seen since the last delivery.
  std::vector<std::pair<std::string, std::string>> pending;

  int message_index = 0;
  for (const std::string& line : logical_lines(file.text)) {
    collect_shell_vars(line, vars);
    collect_php_vars(line, vars);

    if (php && line.find("array(") != std::string::npos) {
      pending.clear();
      std::string body = line.substr(line.find("array(") + 6);
      for (const std::string& piece : support::split(body, ',')) {
        const auto arrow = piece.find("=>");
        if (arrow == std::string::npos) continue;
        const auto key = quoted_after(piece, 0);
        if (!key.has_value()) continue;
        pending.emplace_back(
            *key, std::string(support::trim(piece.substr(arrow + 2))));
      }
    }

    // Delivery lines.
    const bool is_curl = line.find("curl ") != std::string::npos;
    const bool is_fgc = line.find("file_get_contents(") != std::string::npos;
    if (!is_curl && !is_fgc) continue;

    const auto url = quoted_after(
        line, is_curl ? line.find("curl ") : line.find("file_get_contents("));
    if (!url.has_value()) continue;
    ReconstructedMessage msg;
    if (!split_url(*url, msg.host, msg.endpoint_path)) continue;
    if (Reconstructor::is_lan_address(msg.host)) continue;  // §IV-D filter
    msg.executable = file.path;
    msg.delivery_callee = is_curl ? "curl" : "file_get_contents";
    msg.delivery_address =
        support::hash_combine(support::fnv1a64(file.path),
                              static_cast<std::uint64_t>(++message_index));
    msg.format = fw::WireFormat::Query;

    if (is_curl) {
      // Body template: -d "k=$VAR&k2=$(cmd)".
      const auto dpos = line.find("-d ");
      if (dpos != std::string::npos) {
        const auto body = quoted_after(line, dpos);
        if (body.has_value()) {
          for (const std::string& piece : support::split(*body, '&')) {
            const auto eq = piece.find('=');
            if (eq == std::string::npos) continue;
            const std::string key = piece.substr(0, eq);
            const std::string value = piece.substr(eq + 1);
            VarDef def{FieldValueSource::Opaque, value};
            if (const auto it = vars.find(value); it != vars.end())
              def = it->second;
            else if (value.rfind("$(", 0) == 0) {
              const auto inner = parse_command(
                  value.substr(2, value.rfind(')') - 2));
              if (inner.has_value()) def = *inner;
            }
            msg.fields.push_back(make_field(key, def, model_, line));
          }
        }
      }
    } else {
      msg.format = fw::WireFormat::Json;
      for (const auto& [key, raw_value] : pending) {
        std::string value = raw_value;
        while (!value.empty() &&
               (value.back() == ')' || value.back() == ';' ||
                value.back() == ' '))
          value.pop_back();
        VarDef def{FieldValueSource::Opaque, value};
        if (const auto it = vars.find(value); it != vars.end())
          def = it->second;
        else if (!value.empty() && (value[0] == '\'' || value[0] == '"'))
          def = VarDef{FieldValueSource::StringConst,
                       value.substr(1, value.size() - 2)};
        ReconstructedField field = make_field(key, def, model_, line);
        if (def.source == FieldValueSource::StringConst) {
          field.const_value = def.detail;
          field.hardcoded = true;
        }
        msg.fields.push_back(std::move(field));
      }
      pending.clear();
    }
    if (!msg.fields.empty()) out.push_back(std::move(msg));
  }
  return out;
}

std::vector<ReconstructedMessage> ScriptAnalyzer::analyze_image(
    const fw::FirmwareImage& image) const {
  std::vector<ReconstructedMessage> out;
  for (const fw::FirmwareFile& file : image.files) {
    if (file.kind != fw::FirmwareFile::Kind::Script) continue;
    for (ReconstructedMessage& msg : analyze_script(file))
      out.push_back(std::move(msg));
  }
  return out;
}

}  // namespace firmres::core
