// `firmres explain`: render a root-to-leaf derivation for every
// reconstructed field of one device, from the report JSON alone.
//
// The report's per-field `provenance` block (docs/PROVENANCE.md) carries
// the full decision record — taint-walk chain and termination (§IV-B),
// format-split decision (§IV-C separation), classifier scores and margin
// (§IV-C semantics), and the §IV-D keep/drop verdict per MFT — so the
// renderer needs no firmware image, model, or re-analysis: an analyst can
// audit a claim from the report artifact a CI run archived.
#pragma once

#include <string>

#include "support/json.h"

namespace firmres::core {

struct ExplainOptions {
  /// Device to explain (matched against each report's device_id).
  int device_id = 0;
  /// Field selector; empty explains every field. A decimal integer selects
  /// the K-th field counting across the device's messages in report order;
  /// anything else matches field keys exactly.
  std::string field;
};

/// Render the derivation text for one device of a report document (either
/// a single analysis object or the array form `analyze` emits for several
/// images). Throws support::ParseError when the document is not a firmres
/// report, the device is absent, or the field selector matches nothing.
std::string explain_report(const support::Json& report,
                           const ExplainOptions& options);

}  // namespace firmres::core
