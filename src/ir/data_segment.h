// DataSegment: the read-only data of an executable.
//
// String constants (format strings, request paths, JSON keys, hard-coded
// secrets) live here; Ram-space VarNodes reference them by offset. The taint
// engine treats a Ram VarNode that resolves to a string as a terminal field
// source, and the Dev-Secret tracker (§IV-E) reads hard-coded values out of
// this table.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace firmres::ir {

class DataSegment {
 public:
  /// Intern a string, returning its offset. Identical strings share storage
  /// (like a real .rodata string pool after deduplication).
  std::uint64_t intern(std::string_view text);

  /// Place a string at an explicit offset (deserialization). Offsets must
  /// not overlap previously placed strings with different content.
  void intern_at(std::uint64_t offset, std::string_view text);

  /// The string at `offset`, or nullopt if the offset is not a string.
  std::optional<std::string_view> string_at(std::uint64_t offset) const;

  std::size_t string_count() const { return by_offset_.size(); }

  /// Iterate all (offset, string) pairs in address order.
  const std::map<std::uint64_t, std::string>& strings() const {
    return by_offset_;
  }

 private:
  std::map<std::uint64_t, std::string> by_offset_;
  std::map<std::string, std::uint64_t, std::less<>> offsets_;
  std::uint64_t next_offset_ = 0x400000;  // conventional .rodata base
};

}  // namespace firmres::ir
