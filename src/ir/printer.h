// Textual rendering of P-Code — both raw form and the semantically enriched
// form of §IV-C that the NLP pipeline consumes:
//
//   raw:      CALL (ram, 0x12bd4, 8), (unique, 0x1000024e, 4), …
//   enriched: CALL (Fun, printf), (Cons, "posting data of is %s"),
//             (Local, finalBuf, v_1357)
#pragma once

#include <string>

#include "ir/function.h"
#include "ir/program.h"

namespace firmres::ir {

/// Raw operand rendering: "(space, 0xoffset, size)".
std::string render_raw(const VarNode& v);

/// Enriched operand rendering using the function's VarInfo table, e.g.
/// "(Local, finalBuf, v_1357)" / "(Cons, \"…\")" / "(Fun, sprintf)".
/// Falls back to the raw form when no symbol information exists.
std::string render_enriched(const VarNode& v, const Function& fn);

/// One op, raw operands.
std::string render_op_raw(const PcodeOp& op);

/// One op, enriched operands — the slice-token form fed to the classifier.
std::string render_op_enriched(const PcodeOp& op, const Function& fn);

/// Whole function listing (enriched), for debugging and examples.
std::string render_function(const Function& fn);

/// Whole program listing.
std::string render_program(const Program& program);

}  // namespace firmres::ir
