#include "ir/opcodes.h"

namespace firmres::ir {

const char* opcode_name(OpCode op) {
  switch (op) {
    case OpCode::Copy: return "COPY";
    case OpCode::Load: return "LOAD";
    case OpCode::Store: return "STORE";
    case OpCode::IntAdd: return "INT_ADD";
    case OpCode::IntSub: return "INT_SUB";
    case OpCode::IntMult: return "INT_MULT";
    case OpCode::IntDiv: return "INT_DIV";
    case OpCode::IntAnd: return "INT_AND";
    case OpCode::IntOr: return "INT_OR";
    case OpCode::IntXor: return "INT_XOR";
    case OpCode::IntLeft: return "INT_LEFT";
    case OpCode::IntRight: return "INT_RIGHT";
    case OpCode::IntNegate: return "INT_NEGATE";
    case OpCode::IntEqual: return "INT_EQUAL";
    case OpCode::IntNotEqual: return "INT_NOTEQUAL";
    case OpCode::IntLess: return "INT_LESS";
    case OpCode::IntSLess: return "INT_SLESS";
    case OpCode::IntLessEqual: return "INT_LESSEQUAL";
    case OpCode::BoolAnd: return "BOOL_AND";
    case OpCode::BoolOr: return "BOOL_OR";
    case OpCode::BoolNegate: return "BOOL_NEGATE";
    case OpCode::Branch: return "BRANCH";
    case OpCode::CBranch: return "CBRANCH";
    case OpCode::BranchInd: return "BRANCHIND";
    case OpCode::Call: return "CALL";
    case OpCode::CallInd: return "CALLIND";
    case OpCode::Return: return "RETURN";
    case OpCode::Piece: return "PIECE";
    case OpCode::SubPiece: return "SUBPIECE";
    case OpCode::PtrAdd: return "PTRADD";
    case OpCode::PtrSub: return "PTRSUB";
    case OpCode::Cast: return "CAST";
  }
  return "?";
}

bool is_comparison(OpCode op) {
  switch (op) {
    case OpCode::IntEqual:
    case OpCode::IntNotEqual:
    case OpCode::IntLess:
    case OpCode::IntSLess:
    case OpCode::IntLessEqual:
      return true;
    default:
      return false;
  }
}

bool is_call(OpCode op) { return op == OpCode::Call || op == OpCode::CallInd; }

bool is_branch(OpCode op) {
  switch (op) {
    case OpCode::Branch:
    case OpCode::CBranch:
    case OpCode::BranchInd:
      return true;
    default:
      return false;
  }
}

}  // namespace firmres::ir
