// IRBuilder / FunctionBuilder: fluent construction of P-Code programs.
//
// Used by the firmware synthesizer to emit realistic message-construction
// code, and by tests to hand-craft minimal programs. The builder keeps the
// VarInfo symbol table in sync as it allocates operands, so slices rendered
// from built programs carry the (DataType, Name/Constant, NodeID) enrichment
// of §IV-C without a separate pass.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "ir/library.h"
#include "ir/program.h"

namespace firmres::ir {

class FunctionBuilder {
 public:
  FunctionBuilder(Program& program, Function& fn);

  Function& fn() { return fn_; }

  /// Declare a named parameter; returns its VarNode (register space).
  VarNode param(std::string_view name);

  /// Declare a named stack local (scalar or buffer — size is cosmetic).
  VarNode local(std::string_view name, std::uint32_t size = 8);

  /// Interned string constant; VarNode in Ram space pointing at the data
  /// segment. Symbolized as (Cons, "<content>").
  VarNode cstr(std::string_view text);

  /// Numeric constant in Const space.
  VarNode cnum(std::uint64_t value, std::uint32_t size = 4);

  /// Const-space VarNode holding a function's entry address, symbolized as
  /// (Fun, name). Used for callback registration.
  VarNode func_addr(std::string_view function_name);

  /// Anonymous temporary in Unique space.
  VarNode temp(std::uint32_t size = 8);

  /// Emit CALL with a result. If `ret_name` is non-empty, the result is a
  /// named local; otherwise an anonymous unique.
  VarNode call(std::string_view callee, std::vector<VarNode> args,
               std::string_view ret_name = "");

  /// Emit CALL discarding the result.
  void callv(std::string_view callee, std::vector<VarNode> args);

  /// Emit CALLIND through a function-pointer operand.
  void call_indirect(VarNode target, std::vector<VarNode> args);

  VarNode binop(OpCode op, VarNode a, VarNode b);
  VarNode unop(OpCode op, VarNode a);
  void copy(VarNode dst, VarNode src);
  VarNode load(VarNode addr);
  void store(VarNode addr, VarNode value);

  VarNode cmp_eq(VarNode a, VarNode b) { return binop(OpCode::IntEqual, a, b); }
  VarNode cmp_ne(VarNode a, VarNode b) {
    return binop(OpCode::IntNotEqual, a, b);
  }
  VarNode cmp_lt(VarNode a, VarNode b) { return binop(OpCode::IntLess, a, b); }

  // --- Control flow -------------------------------------------------------
  /// Create a new (empty) basic block; does not switch to it.
  int new_block();
  /// Redirect subsequent emission into block `id`.
  void set_block(int id);
  int current_block() const { return current_; }
  /// Unconditional branch; records the CFG edge.
  void branch(int target_block);
  /// Conditional branch on `cond`; true edge first.
  void cbranch(VarNode cond, int true_block, int false_block);
  void ret(std::optional<VarNode> value = std::nullopt);

  /// Address of the most recently emitted op (0 before the first emission).
  /// The synthesizer records delivery-callsite addresses in ground truth
  /// through this.
  std::uint64_t last_op_address() const { return last_address_; }

 private:
  PcodeOp& emit(OpCode opcode);
  void ensure_callee(std::string_view name);

  Program& program_;
  Function& fn_;
  int current_ = 0;
  std::uint64_t next_stack_ = 0x100;
  std::uint64_t next_unique_ = 0x10000000;
  std::uint64_t last_address_ = 0;
};

/// Top-level builder: creates functions within a Program.
class IRBuilder {
 public:
  explicit IRBuilder(Program& program) : program_(program) {}

  /// Start building a local function. The Function gets one entry block.
  FunctionBuilder function(std::string_view name);

  Program& program() { return program_; }

 private:
  Program& program_;
};

}  // namespace firmres::ir
