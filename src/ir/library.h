// LibraryModel: the catalogue of known library/system functions.
//
// FIRMRES's analyses need three things from library calls:
//   1. anchors — which functions receive requests (fun_in) and send
//      responses/messages (fun_out / message delivery, §IV-A/§IV-B);
//   2. field sources — which functions terminate backward taint because
//      their result is a single-information-source value (NVRAM reads,
//      config reads, environment/front-end inputs, device-info getters);
//   3. dataflow summaries — how data moves through string/JSON/crypto
//      helpers without descending into (nonexistent) bodies (§IV-B
//      "we write function summaries for commonly invoked system calls and
//      library calls").
// The roster is drawn from the functions the paper names (SSL_write,
// CyaSSL_write, curl_easy_perform, mosquitto_publish, recv/recvfrom/recvmsg,
// send/sendto/sendmsg, sprintf, cJSON) plus the surrounding families found
// in real firmware.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "ir/arena.h"

namespace firmres::ir {

enum class LibKind : std::uint8_t {
  RecvFn,          ///< fun_in anchors: recv, recvfrom, SSL_read, …
  SendFn,          ///< fun_out anchors: send, sendto, sendmsg
  MsgDeliver,      ///< device-cloud delivery (taint sources of §IV-B)
  SourceNvram,     ///< NVRAM getters — field sources
  SourceConfig,    ///< config-file getters — field sources
  SourceEnv,       ///< environment variables — field sources
  SourceFrontend,  ///< values from the device's web/app front end
  SourceDevInfo,   ///< device information getters (MAC, serial, …)
  StringOp,        ///< sprintf/strcpy/strcat/memcpy family
  JsonOp,          ///< cJSON-style message assembly
  Crypto,          ///< hashing/signing/encoding
  FileOp,          ///< file reads (config / certificate loading)
  EventReg,        ///< event-loop callback registration (async dispatch)
  Ipc,             ///< local IPC endpoints (noise handlers)
  Alloc,
  Other,
};

const char* lib_kind_name(LibKind kind);

/// How data flows through a library call, abstractly.
struct DataflowSummary {
  /// Destination of the flow: an argument index, or -1 for the return value.
  int dst = -1;
  /// Explicit source argument indices.
  std::vector<int> srcs;
  /// If >= 0, every argument from this index onward is also a source
  /// (variadic formatters: sprintf's value arguments).
  int srcs_from = -1;
  /// strcat-like: the destination's previous contents are preserved, so the
  /// destination itself also feeds the flow.
  bool dst_also_src = false;
  /// The call's result is a terminal single-information-source value — a
  /// taint *sink* in the paper's inverted terminology (§IV-B).
  bool is_field_source = false;
};

struct LibFunction {
  std::string name;
  LibKind kind = LibKind::Other;
  DataflowSummary summary;
  /// For MsgDeliver/SendFn: which arguments carry outgoing message content
  /// (URL, topic, body). Each becomes a backward-taint root (§IV-B sources).
  std::vector<int> msg_args;
  /// For RecvFn: which argument receives incoming bytes (-1 = return value).
  int recv_buf_arg = -1;
  /// For EventReg: which argument is the callback function pointer.
  int callback_arg = -1;
  /// For field sources taking a key/name argument (nvram_get("mac")): its
  /// index, used to name the field after the key string.
  int key_arg = -1;
};

/// Immutable singleton catalogue.
class LibraryModel {
 public:
  static const LibraryModel& instance();

  const LibFunction* find(std::string_view name) const;
  bool is_kind(std::string_view name, LibKind kind) const;

  /// True for any of the Source* kinds.
  bool is_field_source(std::string_view name) const;

  /// Dense catalogue id of `name`: 1 + its index in all(), or 0 when the
  /// name is not catalogued. Resolved once per call op at IR construction
  /// (Program::set_call_target) so analyses use PcodeOp::lib() instead of
  /// per-op string lookups.
  LibId id_of(std::string_view name) const;

  /// Summary for a dense id previously returned by id_of; nullptr for 0.
  /// Out-of-range non-zero ids throw.
  static const LibFunction* by_id(LibId id);

  /// All catalogued names of one kind, in catalogue order. The returned
  /// vector is cached in the singleton (callers used to pay an allocation
  /// per query on the identification hot path).
  const std::vector<std::string>& names_of_kind(LibKind kind) const;
  const std::vector<LibFunction>& all() const { return functions_; }

 private:
  LibraryModel();
  std::vector<LibFunction> functions_;
  std::map<std::string, std::size_t, std::less<>> index_;
  std::array<std::vector<std::string>,
             static_cast<std::size_t>(LibKind::Other) + 1>
      by_kind_;
};

}  // namespace firmres::ir
