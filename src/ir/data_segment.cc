#include "ir/data_segment.h"

namespace firmres::ir {

std::uint64_t DataSegment::intern(std::string_view text) {
  if (const auto it = offsets_.find(text); it != offsets_.end()) {
    return it->second;
  }
  const std::uint64_t offset = next_offset_;
  next_offset_ += text.size() + 1;  // NUL terminator, like real .rodata
  by_offset_.emplace(offset, std::string(text));
  offsets_.emplace(std::string(text), offset);
  return offset;
}

void DataSegment::intern_at(std::uint64_t offset, std::string_view text) {
  by_offset_[offset] = std::string(text);
  offsets_[std::string(text)] = offset;
  if (offset + text.size() + 1 > next_offset_)
    next_offset_ = offset + text.size() + 1;
}

std::optional<std::string_view> DataSegment::string_at(
    std::uint64_t offset) const {
  const auto it = by_offset_.find(offset);
  if (it == by_offset_.end()) return std::nullopt;
  return std::string_view(it->second);
}

}  // namespace firmres::ir
