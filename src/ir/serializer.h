// Program (de)serialization.
//
// A Program round-trips through a JSON document — the on-disk form of a
// "lifted executable" in this substrate, playing the role Ghidra project
// databases play for the paper. The format is self-contained: string pool,
// functions (imports included, in creation order so entry addresses
// reproduce exactly), per-function symbol tables, blocks and ops.
#pragma once

#include <memory>

#include "ir/program.h"
#include "support/json.h"

namespace firmres::ir {

/// Serialize a program (functions, blocks, ops, symbols, string pool).
support::Json program_to_json(const Program& program);

/// Reconstruct a program. Throws support::ParseError on malformed input.
std::unique_ptr<Program> program_from_json(const support::Json& doc);

}  // namespace firmres::ir
