// P-Code operation set.
//
// A pragmatic subset of Ghidra's P-Code opcodes — every operation FIRMRES's
// analyses inspect (calls, branches, copies, loads/stores, arithmetic,
// comparisons, concatenation) plus enough arithmetic variety for the
// synthesizer to generate realistic instruction mixes.
#pragma once

#include <cstdint>

namespace firmres::ir {

enum class OpCode : std::uint8_t {
  // Data movement
  Copy,
  Load,
  Store,
  // Integer arithmetic / bitwise
  IntAdd,
  IntSub,
  IntMult,
  IntDiv,
  IntAnd,
  IntOr,
  IntXor,
  IntLeft,
  IntRight,
  IntNegate,
  // Comparisons (produce a 1-byte boolean)
  IntEqual,
  IntNotEqual,
  IntLess,
  IntSLess,
  IntLessEqual,
  // Boolean
  BoolAnd,
  BoolOr,
  BoolNegate,
  // Control flow
  Branch,
  CBranch,
  BranchInd,
  Call,
  CallInd,
  Return,
  // Bit-string composition
  Piece,
  SubPiece,
  // Pointer arithmetic / typing
  PtrAdd,
  PtrSub,
  Cast,
};

const char* opcode_name(OpCode op);

/// True for the comparison opcodes whose results feed CBRANCH conditions —
/// the "predicates" of §IV-A whose operands are counted in P_f.
bool is_comparison(OpCode op);

bool is_call(OpCode op);
bool is_branch(OpCode op);

}  // namespace firmres::ir
