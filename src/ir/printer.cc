#include "ir/printer.h"

#include <sstream>

#include "support/strings.h"

namespace firmres::ir {

std::string render_raw(const VarNode& v) { return v.to_string(); }

std::string render_enriched(const VarNode& v, const Function& fn) {
  const VarInfo* info = fn.var_info(v);
  if (info == nullptr) {
    // Anonymous temporary: type-only tag keeps the token stream stable.
    if (v.space == Space::Unique) return "(Tmp)";
    if (v.space == Space::Const)
      return support::format("(Cons, %llu)",
                             static_cast<unsigned long long>(v.offset));
    return render_raw(v);
  }
  const std::string name(info->name);
  switch (info->type) {
    case DataType::Function:
      return "(Fun, " + name + ")";
    case DataType::Constant:
      if (v.space == Space::Ram) {
        return "(Cons, \"" + name + "\")";
      }
      return "(Cons, " + name + ")";
    case DataType::Local:
      return support::format("(Local, %s, v_%u)", name.c_str(),
                             info->node_id);
    case DataType::Param:
      return support::format("(Param, %s, v_%u)", name.c_str(),
                             info->node_id);
    case DataType::DataPtr:
      return support::format("(DataPtr, %s, v_%u)", name.c_str(),
                             info->node_id);
    case DataType::Global:
      return support::format("(Global, %s, v_%u)", name.c_str(),
                             info->node_id);
    case DataType::Unknown:
      return render_raw(v);
  }
  return render_raw(v);
}

namespace {

std::string render_op(const PcodeOp& op, const Function* fn) {
  auto render = [fn](const VarNode& v) {
    return fn != nullptr ? render_enriched(v, *fn) : render_raw(v);
  };
  std::ostringstream os;
  os << opcode_name(op.opcode);
  if (op.opcode == OpCode::Call) {
    os << " (Fun, " << op.callee << ")";
  }
  if (op.output.has_value()) {
    os << " " << render(*op.output) << " =";
  }
  for (std::size_t i = 0; i < op.inputs.size(); ++i) {
    os << (i == 0 ? " " : ", ") << render(op.inputs[i]);
  }
  return os.str();
}

}  // namespace

std::string render_op_raw(const PcodeOp& op) { return render_op(op, nullptr); }

std::string render_op_enriched(const PcodeOp& op, const Function& fn) {
  return render_op(op, &fn);
}

std::string render_function(const Function& fn) {
  std::ostringstream os;
  os << (fn.is_import() ? "import " : "function ") << fn.name() << " @0x"
     << std::hex << fn.entry_address() << std::dec << "\n";
  for (const auto& block : fn.blocks()) {
    os << "  block " << block.id;
    if (!block.successors.empty()) {
      os << " ->";
      for (int s : block.successors) os << " " << s;
    }
    os << "\n";
    for (const auto& op : block.ops) {
      os << "    0x" << std::hex << op.address << std::dec << ": "
         << render_op_enriched(op, fn) << "\n";
    }
  }
  return os.str();
}

std::string render_program(const Program& program) {
  std::ostringstream os;
  os << "program " << program.name() << " ("
     << program.local_functions().size() << " local functions, "
     << program.total_op_count() << " ops, " << program.data().string_count()
     << " strings)\n";
  for (const Function* fn : program.functions()) {
    if (fn->is_import()) continue;
    os << render_function(*fn);
  }
  return os.str();
}

}  // namespace firmres::ir
