#include "ir/serializer.h"

#include "support/strings.h"

namespace firmres::ir {

namespace {

using support::Json;
using support::JsonArray;
using support::JsonObject;
using support::ParseError;

// --- encoding ----------------------------------------------------------------

Json varnode_to_json(const VarNode& v) {
  JsonArray arr;
  arr.emplace_back(std::string(space_name(v.space)));
  arr.emplace_back(static_cast<double>(v.offset));
  arr.emplace_back(static_cast<double>(v.size));
  return Json(std::move(arr));
}

Json op_to_json(const PcodeOp& op) {
  Json o{JsonObject{}};
  o.set("addr", static_cast<double>(op.address));
  o.set("op", std::string(opcode_name(op.opcode)));
  if (op.output.has_value()) o.set("out", varnode_to_json(*op.output));
  JsonArray inputs;
  for (const VarNode& in : op.inputs) inputs.push_back(varnode_to_json(in));
  o.set("in", Json(std::move(inputs)));
  if (!op.callee.empty()) o.set("callee", op.callee);
  return o;
}

Json function_to_json(const Function& fn) {
  Json f{JsonObject{}};
  f.set("name", fn.name());
  f.set("entry", static_cast<double>(fn.entry_address()));
  f.set("import", fn.is_import());

  JsonArray params;
  for (const VarNode& p : fn.params()) params.push_back(varnode_to_json(p));
  f.set("params", Json(std::move(params)));

  JsonArray symbols;
  for (const auto& [var, info] : fn.var_table()) {
    Json s{JsonObject{}};
    s.set("var", varnode_to_json(var));
    s.set("type", std::string(data_type_name(info.type)));
    s.set("name", info.name);
    s.set("id", static_cast<double>(info.node_id));
    symbols.push_back(std::move(s));
  }
  f.set("symbols", Json(std::move(symbols)));

  JsonArray blocks;
  for (const BasicBlock& b : fn.blocks()) {
    Json blk{JsonObject{}};
    blk.set("id", b.id);
    JsonArray succ;
    for (const int s : b.successors) succ.emplace_back(s);
    blk.set("succ", Json(std::move(succ)));
    JsonArray ops;
    for (const PcodeOp& op : b.ops) ops.push_back(op_to_json(op));
    blk.set("ops", Json(std::move(ops)));
    blocks.push_back(std::move(blk));
  }
  f.set("blocks", Json(std::move(blocks)));
  return f;
}

// --- decoding ----------------------------------------------------------------

[[noreturn]] void malformed(const std::string& what) {
  throw ParseError("program document: " + what);
}

const Json& field(const Json& obj, const char* key) {
  const Json* v = obj.find(key);
  if (v == nullptr) malformed(std::string("missing field '") + key + "'");
  return *v;
}

Space space_from_name(const std::string& name) {
  for (const Space s : {Space::Const, Space::Register, Space::Unique,
                        Space::Stack, Space::Ram}) {
    if (name == space_name(s)) return s;
  }
  malformed("unknown address space '" + name + "'");
}

OpCode opcode_from_name(const std::string& name) {
  // The opcode set is small; a linear scan over the enum keeps the decoder
  // free of a hand-maintained reverse table.
  for (int i = 0; i <= static_cast<int>(OpCode::Cast); ++i) {
    const auto code = static_cast<OpCode>(i);
    if (name == opcode_name(code)) return code;
  }
  malformed("unknown opcode '" + name + "'");
}

DataType data_type_from_name(const std::string& name) {
  for (const DataType t :
       {DataType::Unknown, DataType::Function, DataType::Local,
        DataType::Param, DataType::Constant, DataType::DataPtr,
        DataType::Global}) {
    if (name == data_type_name(t)) return t;
  }
  malformed("unknown data type '" + name + "'");
}

VarNode varnode_from_json(const Json& v) {
  if (!v.is_array() || v.size() != 3) malformed("varnode must be [space, offset, size]");
  const auto& arr = v.as_array();
  return VarNode{.space = space_from_name(arr[0].as_string()),
                 .offset = static_cast<std::uint64_t>(arr[1].as_number()),
                 .size = static_cast<std::uint32_t>(arr[2].as_number())};
}

PcodeOp op_from_json(Program& program, const Json& o) {
  PcodeOp op;
  op.address = static_cast<std::uint64_t>(field(o, "addr").as_number());
  op.opcode = opcode_from_name(field(o, "op").as_string());
  if (const Json* out = o.find("out"); out != nullptr)
    op.output = varnode_from_json(*out);
  std::vector<VarNode> inputs;
  for (const Json& in : field(o, "in").as_array())
    inputs.push_back(varnode_from_json(in));
  op.inputs = program.operand_list(inputs.data(), inputs.size());
  if (const Json* callee = o.find("callee"); callee != nullptr)
    program.set_call_target(op, callee->as_string());
  return op;
}

}  // namespace

support::Json program_to_json(const Program& program) {
  Json doc{JsonObject{}};
  doc.set("format", "firmres-program");
  doc.set("version", 1);
  doc.set("name", program.name());

  JsonArray strings;
  for (const auto& [offset, text] : program.data().strings()) {
    JsonArray entry;
    entry.emplace_back(static_cast<double>(offset));
    entry.emplace_back(text);
    strings.push_back(Json(std::move(entry)));
  }
  doc.set("strings", Json(std::move(strings)));

  JsonArray functions;
  for (const Function* fn : program.functions())
    functions.push_back(function_to_json(*fn));
  doc.set("functions", Json(std::move(functions)));
  return doc;
}

std::unique_ptr<Program> program_from_json(const support::Json& doc) {
  if (!doc.is_object()) malformed("document is not an object");
  if (const Json* fmt = doc.find("format");
      fmt == nullptr || !fmt->is_string() ||
      fmt->as_string() != "firmres-program")
    malformed("not a firmres-program document");

  auto program = std::make_unique<Program>(field(doc, "name").as_string());

  for (const Json& entry : field(doc, "strings").as_array()) {
    if (!entry.is_array() || entry.size() != 2)
      malformed("string entry must be [offset, text]");
    program->data().intern_at(
        static_cast<std::uint64_t>(entry.as_array()[0].as_number()),
        entry.as_array()[1].as_string());
  }

  // Two-pass decode. Pass 1 creates every function shell in document order
  // (so deterministic entry addresses reproduce and func_addr constants
  // stay valid); pass 2 fills bodies. The split lets set_call_target
  // resolve forward references — a call to a function that appears later
  // in the document still gets its dense callee_fn id.
  const JsonArray& fdocs = field(doc, "functions").as_array();
  for (const Json& fdoc : fdocs) {
    Function& fn = program->add_function(field(fdoc, "name").as_string(),
                                         field(fdoc, "import").as_bool());
    const auto expected_entry =
        static_cast<std::uint64_t>(field(fdoc, "entry").as_number());
    if (fn.entry_address() != expected_entry)
      malformed(support::format(
          "entry address mismatch for %s: document 0x%llx, assigned 0x%llx "
          "(functions out of creation order?)",
          fn.name().c_str(),
          static_cast<unsigned long long>(expected_entry),
          static_cast<unsigned long long>(fn.entry_address())));
  }

  for (const Json& fdoc : fdocs) {
    Function& fn = *program->function(field(fdoc, "name").as_string());

    for (const Json& p : field(fdoc, "params").as_array())
      fn.add_param(varnode_from_json(p));

    for (const Json& s : field(fdoc, "symbols").as_array()) {
      fn.set_var_info(
          varnode_from_json(field(s, "var")),
          data_type_from_name(field(s, "type").as_string()),
          field(s, "name").as_string(),
          static_cast<std::uint32_t>(field(s, "id").as_number()));
    }

    for (const Json& bdoc : field(fdoc, "blocks").as_array()) {
      const int id = fn.add_block();
      if (id != static_cast<int>(field(bdoc, "id").as_number()))
        malformed("block ids must be dense and in order");
      BasicBlock& block = fn.block(id);
      for (const Json& s : field(bdoc, "succ").as_array())
        block.successors.push_back(static_cast<int>(s.as_number()));
      for (const Json& o : field(bdoc, "ops").as_array())
        block.ops.push_back(op_from_json(*program, o));
    }
  }
  return program;
}

}  // namespace firmres::ir
