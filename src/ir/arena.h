// Arena storage for the P-Code IR: dense IDs, interned strings, and pooled
// operand lists.
//
// The analyses (§IV-A identification, §IV-B taint, ValueFlow, points-to,
// the verifier) are all worklist algorithms over `ir::Program`; their inner
// loops used to chase per-op heap allocations (a std::vector of inputs and a
// std::string callee per PcodeOp) and string-keyed map lookups per call op.
// This header provides the replacement storage model:
//
//   * StrId / FuncId / LibId — dense 32/32/16-bit indices replacing string
//     keys on the hot paths. `StrId 0` is always the empty string; `LibId 0`
//     means "not a known library function"; `kNoFunc` means "no in-program
//     callee".
//   * StringTable — per-program string interner. Views returned by `view()`
//     are stable for the life of the Program (deque-backed storage; elements
//     never move, even when the Program itself is moved).
//   * OperandArena — chunked bump storage for PcodeOp input lists. Ops hold
//     `std::span<const VarNode>` into the arena, so copying an op is a
//     shallow 16-byte span copy and iterating inputs touches contiguous
//     memory. Chunks are reserved up front and never reallocate, so spans
//     are stable for the life of the Program.
//
// Invariants (see docs/IR.md):
//   * IDs are creation-ordered and dense: the Nth add_function gets
//     FuncId N, the Nth distinct interned string gets StrId N (with N=0
//     reserved for "").
//   * IDs are never reused or invalidated; Programs only grow.
//   * Out-of-range IDs are a programming error: `view()` /
//     `Program::function_by_id` throw via FIRMRES_CHECK rather than
//     returning garbage.
#pragma once

#include <cstdint>
#include <deque>
#include <initializer_list>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "ir/varnode.h"
#include "support/error.h"

namespace firmres::ir {

/// Index into a Program's StringTable. 0 is always the empty string.
using StrId = std::uint32_t;

/// Dense per-program function index (creation order, imports included).
using FuncId = std::uint32_t;

/// 1-based index into LibraryModel::all(); 0 = not a known library function.
using LibId = std::uint16_t;

/// Sentinel FuncId: "no in-program function" (e.g. a call to a name the
/// program does not define — impossible through the builder, which
/// auto-registers imports, but representable in hand-built IR).
inline constexpr FuncId kNoFunc = 0xFFFFFFFFu;

/// Per-program string interner. Deduplicates on intern; id 0 is the empty
/// string. Returned views are stable for the table's lifetime (deque-backed
/// element storage never moves) and remain valid after the owning Program is
/// moved.
class StringTable {
 public:
  StringTable() { strings_.emplace_back(); }  // id 0 = ""

  /// Intern `s`, returning its dense id. Repeated interning of equal
  /// strings returns the same id.
  StrId intern(std::string_view s) {
    if (s.empty()) return 0;
    const auto it = index_.find(s);
    if (it != index_.end()) return it->second;
    strings_.emplace_back(s);
    const StrId id = static_cast<StrId>(strings_.size() - 1);
    index_.emplace(std::string_view(strings_.back()), id);
    return id;
  }

  /// Stable view of an interned string. Out-of-range ids throw.
  std::string_view view(StrId id) const {
    FIRMRES_CHECK_MSG(id < strings_.size(), "StrId out of range");
    return strings_[id];
  }

  /// Number of interned strings, the empty string included.
  std::size_t size() const { return strings_.size(); }

 private:
  std::deque<std::string> strings_;  // stable element addresses
  std::unordered_map<std::string_view, StrId> index_;  // views into strings_
};

/// Chunked bump allocator for PcodeOp operand lists. Each chunk is reserved
/// at construction and never reallocates, so spans handed out stay valid for
/// the arena's lifetime (and across moves of the owning Program).
class OperandArena {
 public:
  std::span<const VarNode> copy(const VarNode* data, std::size_t n) {
    if (n == 0) return {};
    if (chunks_.empty() ||
        chunks_.back().capacity() - chunks_.back().size() < n) {
      chunks_.emplace_back();
      chunks_.back().reserve(std::max(kChunkNodes, n));
    }
    std::vector<VarNode>& chunk = chunks_.back();
    const std::size_t start = chunk.size();
    chunk.insert(chunk.end(), data, data + n);
    total_ += n;
    return {chunk.data() + start, n};
  }

  std::span<const VarNode> copy(std::initializer_list<VarNode> vals) {
    return copy(vals.begin(), vals.size());
  }

  std::span<const VarNode> copy(const std::vector<VarNode>& vals) {
    return copy(vals.data(), vals.size());
  }

  /// Total VarNodes stored across all chunks.
  std::size_t size() const { return total_; }

 private:
  static constexpr std::size_t kChunkNodes = 4096;
  std::vector<std::vector<VarNode>> chunks_;
  std::size_t total_ = 0;
};

}  // namespace firmres::ir
