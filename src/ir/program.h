// Program: one executable lowered to P-Code.
//
// The analogue of a Ghidra program database: functions (local + imported),
// a read-only data segment, and stable op/function addressing. Programs are
// what the firmware synthesizer produces and what every FIRMRES analysis
// consumes.
//
// Storage model (docs/IR.md): functions live in a deque (stable addresses,
// dense creation-order FuncIds), the name index is an unordered map of
// views into the functions' own name storage, operand lists live in a
// per-program OperandArena, and all interned strings (callee symbols,
// VarInfo names) live in a per-program StringTable. `set_call_target` is
// the single place a call op's callee is recorded; it keeps the interned
// view and the dense callee_fn / lib_id resolutions in sync.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "ir/arena.h"
#include "ir/data_segment.h"
#include "ir/function.h"

namespace firmres::ir {

class Program {
 public:
  explicit Program(std::string name) : name_(std::move(name)) {}

  Program(const Program&) = delete;
  Program& operator=(const Program&) = delete;
  Program(Program&&) = default;
  Program& operator=(Program&&) = default;

  const std::string& name() const { return name_; }

  DataSegment& data() { return data_; }
  const DataSegment& data() const { return data_; }

  /// Per-program string interner (callee symbols, VarInfo names).
  StringTable& strings() { return strings_; }
  const StringTable& strings() const { return strings_; }

  /// Per-program operand pool backing PcodeOp::inputs.
  OperandArena& operands() { return operands_; }

  /// Copy an operand list into the pool; the returned span is stable for
  /// the Program's lifetime.
  std::span<const VarNode> operand_list(std::initializer_list<VarNode> vals) {
    return operands_.copy(vals);
  }
  std::span<const VarNode> operand_list(const VarNode* data, std::size_t n) {
    return operands_.copy(data, n);
  }

  /// Record `op`'s direct-call target: interns the symbol and pre-resolves
  /// the dense in-program FuncId and LibraryModel id. The only sanctioned
  /// way to set PcodeOp::callee.
  void set_call_target(PcodeOp& op, std::string_view callee);

  /// Create a function. Names are unique within a program. The new
  /// function's FuncId is the creation index (functions().size() - 1).
  Function& add_function(std::string_view name, bool is_import = false);

  /// Look up by name; nullptr when absent.
  Function* function(std::string_view name);
  const Function* function(std::string_view name) const;

  /// Dense id for a name; kNoFunc when absent.
  FuncId function_id(std::string_view name) const;

  /// Look up by dense id; nullptr for kNoFunc, throws on other
  /// out-of-range ids (a corrupted id is a programming error).
  Function* function_by_id(FuncId id);
  const Function* function_by_id(FuncId id) const;

  /// All functions in creation order (imports included). Index == FuncId.
  const std::vector<Function*>& functions() const { return order_; }

  /// Local (non-import) functions only.
  std::vector<Function*> local_functions() const;

  /// Program-unique address allocator for ops.
  std::uint64_t alloc_op_address() { return next_op_address_ += 4; }

  /// Fresh node id for VarInfo disambiguation.
  std::uint32_t alloc_node_id() { return ++next_node_id_; }

  std::size_t total_op_count() const;

 private:
  std::string name_;
  DataSegment data_;
  StringTable strings_;
  OperandArena operands_;
  std::deque<Function> funcs_;  ///< stable addresses; index == FuncId
  std::vector<Function*> order_;
  /// Views into each Function's own name storage (stable in the deque).
  std::unordered_map<std::string_view, FuncId> index_;
  std::uint64_t next_op_address_ = 0x10000;
  std::uint64_t next_func_address_ = 0x1000;
  std::uint32_t next_node_id_ = 1000;
};

}  // namespace firmres::ir
