// Program: one executable lowered to P-Code.
//
// The analogue of a Ghidra program database: functions (local + imported),
// a read-only data segment, and stable op/function addressing. Programs are
// what the firmware synthesizer produces and what every FIRMRES analysis
// consumes.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "ir/data_segment.h"
#include "ir/function.h"

namespace firmres::ir {

class Program {
 public:
  explicit Program(std::string name) : name_(std::move(name)) {}

  Program(const Program&) = delete;
  Program& operator=(const Program&) = delete;
  Program(Program&&) = default;
  Program& operator=(Program&&) = default;

  const std::string& name() const { return name_; }

  DataSegment& data() { return data_; }
  const DataSegment& data() const { return data_; }

  /// Create a function. Names are unique within a program.
  Function& add_function(std::string_view name, bool is_import = false);

  /// Look up by name; nullptr when absent.
  Function* function(std::string_view name);
  const Function* function(std::string_view name) const;

  /// All functions in creation order (imports included).
  const std::vector<Function*>& functions() const { return order_; }

  /// Local (non-import) functions only.
  std::vector<Function*> local_functions() const;

  /// Program-unique address allocator for ops.
  std::uint64_t alloc_op_address() { return next_op_address_ += 4; }

  /// Fresh node id for VarInfo disambiguation.
  std::uint32_t alloc_node_id() { return ++next_node_id_; }

  std::size_t total_op_count() const;

 private:
  std::string name_;
  DataSegment data_;
  std::map<std::string, std::unique_ptr<Function>, std::less<>> functions_;
  std::vector<Function*> order_;
  std::uint64_t next_op_address_ = 0x10000;
  std::uint64_t next_func_address_ = 0x1000;
  std::uint32_t next_node_id_ = 1000;
};

}  // namespace firmres::ir
