// Function and BasicBlock: the unit of P-Code code.
//
// Imported library functions (recv, SSL_write, sprintf, …) are represented
// as body-less Functions flagged `is_import`; their dataflow behaviour comes
// from LibraryModel summaries, mirroring how FIRMRES "write[s] function
// summaries for commonly invoked system calls and library calls" (§IV-B).
//
// Storage model (docs/IR.md): functions carry a dense per-program FuncId
// (creation order), blocks already have dense ids, ops live in contiguous
// per-block vectors (the op pools), and the symbol table is a flat vector
// sorted by VarNode — binary-searched on lookup, iterated in sorted order
// by the serializer and cache hashers exactly as the old std::map was.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "ir/arena.h"
#include "ir/pcode.h"
#include "ir/varnode.h"
#include "support/error.h"

namespace firmres::ir {

struct BasicBlock {
  int id = 0;
  std::vector<PcodeOp> ops;
  std::vector<int> successors;  ///< block ids; fallthrough first
};

class Function {
 public:
  Function(std::string name, std::uint64_t entry, bool is_import,
           FuncId id = kNoFunc, StringTable* strings = nullptr)
      : name_(std::move(name)),
        entry_(entry),
        is_import_(is_import),
        id_(id),
        strings_(strings) {}

  const std::string& name() const { return name_; }
  std::uint64_t entry_address() const { return entry_; }
  bool is_import() const { return is_import_; }

  /// Dense creation-order id within the owning Program (kNoFunc for a
  /// Function constructed outside a Program).
  FuncId id() const { return id_; }

  const std::vector<VarNode>& params() const { return params_; }
  void add_param(VarNode v) { params_.push_back(v); }

  std::vector<BasicBlock>& blocks() { return blocks_; }
  const std::vector<BasicBlock>& blocks() const { return blocks_; }

  BasicBlock& block(int id) {
    FIRMRES_CHECK(id >= 0 && static_cast<std::size_t>(id) < blocks_.size());
    return blocks_[static_cast<std::size_t>(id)];
  }

  /// Append a new empty block, returning its id.
  int add_block() {
    const int id = static_cast<int>(blocks_.size());
    blocks_.push_back(BasicBlock{.id = id, .ops = {}, .successors = {}});
    return id;
  }

  /// Symbol information for a VarNode in this function's scope. Binary
  /// search over the sorted flat table.
  const VarInfo* var_info(const VarNode& v) const {
    const auto it = std::lower_bound(
        var_info_.begin(), var_info_.end(), v,
        [](const auto& entry, const VarNode& key) { return entry.first < key; });
    return (it != var_info_.end() && it->first == v) ? &it->second : nullptr;
  }

  /// Record (or overwrite) symbol information. `name` is interned in the
  /// owning Program's StringTable, so callers may pass temporaries.
  void set_var_info(const VarNode& v, DataType type, std::string_view name,
                    std::uint32_t node_id) {
    FIRMRES_CHECK_MSG(strings_ != nullptr,
                      "set_var_info on a Function without a Program");
    const StrId name_id = strings_->intern(name);
    VarInfo info{.type = type,
                 .name = strings_->view(name_id),
                 .name_id = name_id,
                 .node_id = node_id};
    const auto it = std::lower_bound(
        var_info_.begin(), var_info_.end(), v,
        [](const auto& entry, const VarNode& key) { return entry.first < key; });
    if (it != var_info_.end() && it->first == v) {
      it->second = info;
    } else {
      var_info_.insert(it, {v, info});
    }
  }

  /// The full symbol table, sorted by VarNode.
  const std::vector<std::pair<VarNode, VarInfo>>& var_table() const {
    return var_info_;
  }

  /// Visit every op in layout order (block order, op order within block).
  void for_each_op(const std::function<void(const PcodeOp&)>& fn) const {
    for (const auto& b : blocks_)
      for (const auto& op : b.ops) fn(op);
  }

  /// All ops in layout order, flattened. Convenience for analyses that are
  /// control-flow-insensitive (the backward taint of §IV-B). Allocates;
  /// hot paths iterate blocks()/for_each_op directly instead.
  std::vector<const PcodeOp*> ops_in_order() const {
    std::vector<const PcodeOp*> out;
    out.reserve(op_count());
    for (const auto& b : blocks_)
      for (const auto& op : b.ops) out.push_back(&op);
    return out;
  }

  std::size_t op_count() const {
    std::size_t n = 0;
    for (const auto& b : blocks_) n += b.ops.size();
    return n;
  }

 private:
  std::string name_;
  std::uint64_t entry_;
  bool is_import_;
  FuncId id_;
  StringTable* strings_;  ///< owning Program's interner (may be null)
  std::vector<VarNode> params_;
  std::vector<BasicBlock> blocks_;
  std::vector<std::pair<VarNode, VarInfo>> var_info_;  ///< sorted by VarNode
};

}  // namespace firmres::ir
