// Function and BasicBlock: the unit of P-Code code.
//
// Imported library functions (recv, SSL_write, sprintf, …) are represented
// as body-less Functions flagged `is_import`; their dataflow behaviour comes
// from LibraryModel summaries, mirroring how FIRMRES "write[s] function
// summaries for commonly invoked system calls and library calls" (§IV-B).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "ir/pcode.h"
#include "ir/varnode.h"
#include "support/error.h"

namespace firmres::ir {

struct BasicBlock {
  int id = 0;
  std::vector<PcodeOp> ops;
  std::vector<int> successors;  ///< block ids; fallthrough first
};

class Function {
 public:
  Function(std::string name, std::uint64_t entry, bool is_import)
      : name_(std::move(name)), entry_(entry), is_import_(is_import) {}

  const std::string& name() const { return name_; }
  std::uint64_t entry_address() const { return entry_; }
  bool is_import() const { return is_import_; }

  const std::vector<VarNode>& params() const { return params_; }
  void add_param(VarNode v) { params_.push_back(v); }

  std::vector<BasicBlock>& blocks() { return blocks_; }
  const std::vector<BasicBlock>& blocks() const { return blocks_; }

  BasicBlock& block(int id) {
    FIRMRES_CHECK(id >= 0 && static_cast<std::size_t>(id) < blocks_.size());
    return blocks_[static_cast<std::size_t>(id)];
  }

  /// Append a new empty block, returning its id.
  int add_block() {
    const int id = static_cast<int>(blocks_.size());
    blocks_.push_back(BasicBlock{.id = id, .ops = {}, .successors = {}});
    return id;
  }

  /// Symbol information for a VarNode in this function's scope.
  const VarInfo* var_info(const VarNode& v) const {
    const auto it = var_info_.find(v);
    return it == var_info_.end() ? nullptr : &it->second;
  }
  void set_var_info(const VarNode& v, VarInfo info) {
    var_info_[v] = std::move(info);
  }
  const std::map<VarNode, VarInfo>& var_table() const { return var_info_; }

  /// Visit every op in layout order (block order, op order within block).
  void for_each_op(const std::function<void(const PcodeOp&)>& fn) const {
    for (const auto& b : blocks_)
      for (const auto& op : b.ops) fn(op);
  }

  /// All ops in layout order, flattened. Convenience for analyses that are
  /// control-flow-insensitive (the backward taint of §IV-B).
  std::vector<const PcodeOp*> ops_in_order() const {
    std::vector<const PcodeOp*> out;
    for (const auto& b : blocks_)
      for (const auto& op : b.ops) out.push_back(&op);
    return out;
  }

  std::size_t op_count() const {
    std::size_t n = 0;
    for (const auto& b : blocks_) n += b.ops.size();
    return n;
  }

 private:
  std::string name_;
  std::uint64_t entry_;
  bool is_import_;
  std::vector<VarNode> params_;
  std::vector<BasicBlock> blocks_;
  std::map<VarNode, VarInfo> var_info_;
};

}  // namespace firmres::ir
