#include "ir/builder.h"

#include "support/error.h"

namespace firmres::ir {

FunctionBuilder::FunctionBuilder(Program& program, Function& fn)
    : program_(program), fn_(fn) {
  if (fn_.blocks().empty()) fn_.add_block();
}

VarNode FunctionBuilder::param(std::string_view name) {
  // Parameters occupy consecutive register slots (a0, a1, … convention).
  const VarNode v{.space = Space::Register,
                  .offset = 0x1000 + fn_.params().size() * 8,
                  .size = 8};
  fn_.add_param(v);
  fn_.set_var_info(v, DataType::Param, name, program_.alloc_node_id());
  return v;
}

VarNode FunctionBuilder::local(std::string_view name, std::uint32_t size) {
  const VarNode v{.space = Space::Stack, .offset = next_stack_, .size = size};
  next_stack_ += std::max<std::uint64_t>(size, 8);
  fn_.set_var_info(v, DataType::Local, name, program_.alloc_node_id());
  return v;
}

VarNode FunctionBuilder::cstr(std::string_view text) {
  const std::uint64_t offset = program_.data().intern(text);
  const VarNode v{.space = Space::Ram, .offset = offset, .size = 8};
  fn_.set_var_info(v, DataType::Constant, text, 0);
  return v;
}

VarNode FunctionBuilder::cnum(std::uint64_t value, std::uint32_t size) {
  const VarNode v{.space = Space::Const, .offset = value, .size = size};
  fn_.set_var_info(v, DataType::Constant, std::to_string(value), 0);
  return v;
}

VarNode FunctionBuilder::func_addr(std::string_view function_name) {
  const Function* target = program_.function(function_name);
  FIRMRES_CHECK_MSG(target != nullptr,
                    "func_addr of unknown function: " +
                        std::string(function_name));
  const VarNode v{.space = Space::Const,
                  .offset = target->entry_address(),
                  .size = 8};
  fn_.set_var_info(v, DataType::Function, function_name, 0);
  return v;
}

VarNode FunctionBuilder::temp(std::uint32_t size) {
  return VarNode{.space = Space::Unique, .offset = next_unique_ += 0x10,
                 .size = size};
}

PcodeOp& FunctionBuilder::emit(OpCode opcode) {
  BasicBlock& b = fn_.block(current_);
  last_address_ = program_.alloc_op_address();
  b.ops.push_back(PcodeOp{.address = last_address_, .opcode = opcode});
  return b.ops.back();
}

void FunctionBuilder::ensure_callee(std::string_view name) {
  if (program_.function(name) != nullptr) return;
  // Unknown callee: auto-register as an import (the loader of a real binary
  // would have created a thunk for every PLT entry).
  Function& imp = program_.add_function(name, /*is_import=*/true);
  (void)imp;
}

VarNode FunctionBuilder::call(std::string_view callee,
                              std::vector<VarNode> args,
                              std::string_view ret_name) {
  ensure_callee(callee);
  VarNode out = ret_name.empty() ? temp() : local(ret_name);
  PcodeOp& op = emit(OpCode::Call);
  program_.set_call_target(op, callee);
  op.inputs = program_.operand_list(args.data(), args.size());
  op.output = out;
  return out;
}

void FunctionBuilder::callv(std::string_view callee,
                            std::vector<VarNode> args) {
  ensure_callee(callee);
  PcodeOp& op = emit(OpCode::Call);
  program_.set_call_target(op, callee);
  op.inputs = program_.operand_list(args.data(), args.size());
}

void FunctionBuilder::call_indirect(VarNode target,
                                    std::vector<VarNode> args) {
  PcodeOp& op = emit(OpCode::CallInd);
  std::vector<VarNode> all;
  all.reserve(args.size() + 1);
  all.push_back(target);
  all.insert(all.end(), args.begin(), args.end());
  op.inputs = program_.operand_list(all.data(), all.size());
}

VarNode FunctionBuilder::binop(OpCode opcode, VarNode a, VarNode b) {
  VarNode out = temp(is_comparison(opcode) ? 1 : a.size);
  PcodeOp& op = emit(opcode);
  op.inputs = program_.operand_list({a, b});
  op.output = out;
  return out;
}

VarNode FunctionBuilder::unop(OpCode opcode, VarNode a) {
  VarNode out = temp(a.size);
  PcodeOp& op = emit(opcode);
  op.inputs = program_.operand_list({a});
  op.output = out;
  return out;
}

void FunctionBuilder::copy(VarNode dst, VarNode src) {
  PcodeOp& op = emit(OpCode::Copy);
  op.inputs = program_.operand_list({src});
  op.output = dst;
}

VarNode FunctionBuilder::load(VarNode addr) {
  VarNode out = temp();
  PcodeOp& op = emit(OpCode::Load);
  op.inputs = program_.operand_list({addr});
  op.output = out;
  return out;
}

void FunctionBuilder::store(VarNode addr, VarNode value) {
  PcodeOp& op = emit(OpCode::Store);
  op.inputs = program_.operand_list({addr, value});
}

int FunctionBuilder::new_block() { return fn_.add_block(); }

void FunctionBuilder::set_block(int id) {
  FIRMRES_CHECK(id >= 0 &&
                static_cast<std::size_t>(id) < fn_.blocks().size());
  current_ = id;
}

void FunctionBuilder::branch(int target_block) {
  PcodeOp& op = emit(OpCode::Branch);
  op.inputs = program_.operand_list(
      {VarNode{.space = Space::Const,
               .offset = static_cast<std::uint64_t>(target_block),
               .size = 4}});
  fn_.block(current_).successors = {target_block};
}

void FunctionBuilder::cbranch(VarNode cond, int true_block, int false_block) {
  PcodeOp& op = emit(OpCode::CBranch);
  op.inputs = program_.operand_list(
      {cond, VarNode{.space = Space::Const,
                     .offset = static_cast<std::uint64_t>(true_block),
                     .size = 4}});
  fn_.block(current_).successors = {true_block, false_block};
}

void FunctionBuilder::ret(std::optional<VarNode> value) {
  PcodeOp& op = emit(OpCode::Return);
  if (value.has_value()) op.inputs = program_.operand_list({*value});
}

FunctionBuilder IRBuilder::function(std::string_view name) {
  Function& fn = program_.add_function(name, /*is_import=*/false);
  return FunctionBuilder(program_, fn);
}

}  // namespace firmres::ir
