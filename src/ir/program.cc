#include "ir/program.h"

#include "ir/library.h"
#include "support/error.h"

namespace firmres::ir {

Function& Program::add_function(std::string_view name, bool is_import) {
  FIRMRES_CHECK_MSG(index_.find(name) == index_.end(),
                    "duplicate function: " + std::string(name));
  next_func_address_ += 0x100;
  const FuncId id = static_cast<FuncId>(funcs_.size());
  funcs_.emplace_back(std::string(name), next_func_address_, is_import, id,
                      &strings_);
  Function& fn = funcs_.back();
  order_.push_back(&fn);
  index_.emplace(std::string_view(fn.name()), id);
  return fn;
}

Function* Program::function(std::string_view name) {
  const auto it = index_.find(name);
  return it == index_.end() ? nullptr : order_[it->second];
}

const Function* Program::function(std::string_view name) const {
  const auto it = index_.find(name);
  return it == index_.end() ? nullptr : order_[it->second];
}

FuncId Program::function_id(std::string_view name) const {
  const auto it = index_.find(name);
  return it == index_.end() ? kNoFunc : it->second;
}

Function* Program::function_by_id(FuncId id) {
  if (id == kNoFunc) return nullptr;
  FIRMRES_CHECK_MSG(id < funcs_.size(), "FuncId out of range");
  return order_[id];
}

const Function* Program::function_by_id(FuncId id) const {
  if (id == kNoFunc) return nullptr;
  FIRMRES_CHECK_MSG(id < funcs_.size(), "FuncId out of range");
  return order_[id];
}

void Program::set_call_target(PcodeOp& op, std::string_view callee) {
  op.callee_id = strings_.intern(callee);
  op.callee = strings_.view(op.callee_id);
  op.callee_fn = function_id(callee);
  op.lib_id = LibraryModel::instance().id_of(callee);
}

std::vector<Function*> Program::local_functions() const {
  std::vector<Function*> out;
  for (Function* f : order_)
    if (!f->is_import()) out.push_back(f);
  return out;
}

std::size_t Program::total_op_count() const {
  std::size_t n = 0;
  for (const Function* f : order_) n += f->op_count();
  return n;
}

}  // namespace firmres::ir
