#include "ir/program.h"

#include "support/error.h"

namespace firmres::ir {

Function& Program::add_function(std::string_view name, bool is_import) {
  FIRMRES_CHECK_MSG(functions_.find(name) == functions_.end(),
                    "duplicate function: " + std::string(name));
  next_func_address_ += 0x100;
  auto fn = std::make_unique<Function>(std::string(name), next_func_address_,
                                       is_import);
  Function* raw = fn.get();
  functions_.emplace(std::string(name), std::move(fn));
  order_.push_back(raw);
  return *raw;
}

Function* Program::function(std::string_view name) {
  const auto it = functions_.find(name);
  return it == functions_.end() ? nullptr : it->second.get();
}

const Function* Program::function(std::string_view name) const {
  const auto it = functions_.find(name);
  return it == functions_.end() ? nullptr : it->second.get();
}

std::vector<Function*> Program::local_functions() const {
  std::vector<Function*> out;
  for (Function* f : order_)
    if (!f->is_import()) out.push_back(f);
  return out;
}

std::size_t Program::total_op_count() const {
  std::size_t n = 0;
  for (const Function* f : order_) n += f->op_count();
  return n;
}

}  // namespace firmres::ir
