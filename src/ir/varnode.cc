#include "ir/varnode.h"

#include "support/strings.h"

namespace firmres::ir {

const char* space_name(Space space) {
  switch (space) {
    case Space::Const: return "const";
    case Space::Register: return "register";
    case Space::Unique: return "unique";
    case Space::Stack: return "stack";
    case Space::Ram: return "ram";
  }
  return "?";
}

std::string VarNode::to_string() const {
  return support::format("(%s, 0x%llx, %u)", space_name(space),
                         static_cast<unsigned long long>(offset), size);
}

const char* data_type_name(DataType type) {
  switch (type) {
    case DataType::Unknown: return "Unknown";
    case DataType::Function: return "Fun";
    case DataType::Local: return "Local";
    case DataType::Param: return "Param";
    case DataType::Constant: return "Cons";
    case DataType::DataPtr: return "DataPtr";
    case DataType::Global: return "Global";
  }
  return "?";
}

}  // namespace firmres::ir
