// VarNode: the P-Code operand model.
//
// Mirrors Ghidra's Varnode (§V-A: "static taint analysis is implemented with
// Ghidra's representation Varnode based on the P-Code"): a triple of
// (address space, offset, size). FIRMRES's analyses treat VarNodes as the
// unit of dataflow; symbol information (names, recovered data types) is kept
// out-of-line in per-function VarInfo tables, exactly as a decompiler
// recovers it separately from the raw operands.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

namespace firmres::ir {

/// Address spaces, following the P-Code model.
enum class Space : std::uint8_t {
  Const,     ///< numeric constants; `offset` is the value itself
  Register,  ///< general-purpose registers
  Unique,    ///< compiler/decompiler temporaries
  Stack,     ///< function-local storage (locals, buffers)
  Ram,       ///< global data; `offset` indexes the program's DataSegment
};

const char* space_name(Space space);

/// A storage location or constant operand. Value type, totally ordered so it
/// can key maps in the dataflow engines.
struct VarNode {
  Space space = Space::Unique;
  std::uint64_t offset = 0;
  std::uint32_t size = 4;

  friend auto operator<=>(const VarNode&, const VarNode&) = default;

  bool is_constant() const { return space == Space::Const; }
  bool is_ram() const { return space == Space::Ram; }

  /// Raw rendering, e.g. "(unique, 0x1000024e, 4)".
  std::string to_string() const;
};

/// Recovered data type of a VarNode — drives the semantic enrichment of
/// P-Code slices (§IV-C: "function, local variable, parameter, constant, and
/// data pointer").
enum class DataType : std::uint8_t {
  Unknown,
  Function,
  Local,
  Param,
  Constant,
  DataPtr,
  Global,
};

const char* data_type_name(DataType type);

/// Symbol-table entry for a VarNode: its recovered type and name. `node_id`
/// disambiguates same-named variables across functions (§IV-C "we randomly
/// generate Node IDs for them to differentiate them"). The name is interned
/// in the owning Program's StringTable — VarInfo is constructed only by
/// Function::set_var_info, which performs the interning, so the view is
/// stable for the Program's lifetime.
struct VarInfo {
  DataType type = DataType::Unknown;
  std::string_view name;       ///< interned; see Function::set_var_info
  std::uint32_t name_id = 0;   ///< StrId of `name` (0 = empty)
  std::uint32_t node_id = 0;
};

}  // namespace firmres::ir
