#include "ir/library.h"

#include "support/error.h"

namespace firmres::ir {

const char* lib_kind_name(LibKind kind) {
  switch (kind) {
    case LibKind::RecvFn: return "RecvFn";
    case LibKind::SendFn: return "SendFn";
    case LibKind::MsgDeliver: return "MsgDeliver";
    case LibKind::SourceNvram: return "SourceNvram";
    case LibKind::SourceConfig: return "SourceConfig";
    case LibKind::SourceEnv: return "SourceEnv";
    case LibKind::SourceFrontend: return "SourceFrontend";
    case LibKind::SourceDevInfo: return "SourceDevInfo";
    case LibKind::StringOp: return "StringOp";
    case LibKind::JsonOp: return "JsonOp";
    case LibKind::Crypto: return "Crypto";
    case LibKind::FileOp: return "FileOp";
    case LibKind::EventReg: return "EventReg";
    case LibKind::Ipc: return "Ipc";
    case LibKind::Alloc: return "Alloc";
    case LibKind::Other: return "Other";
  }
  return "?";
}

namespace {

LibFunction make(std::string name, LibKind kind, DataflowSummary summary = {},
                 std::vector<int> msg_args = {}, int recv_buf_arg = -1,
                 int callback_arg = -1, int key_arg = -1) {
  LibFunction f;
  f.name = std::move(name);
  f.kind = kind;
  f.summary = std::move(summary);
  f.msg_args = std::move(msg_args);
  f.recv_buf_arg = recv_buf_arg;
  f.callback_arg = callback_arg;
  f.key_arg = key_arg;
  return f;
}

}  // namespace

LibraryModel::LibraryModel() {
  auto add = [this](LibFunction f) {
    index_.emplace(f.name, functions_.size());
    functions_.push_back(std::move(f));
  };

  // ---- fun_in anchors (request reception). Buffer argument receives data.
  add(make("recv", LibKind::RecvFn, {}, {}, /*recv_buf_arg=*/1));
  add(make("recvfrom", LibKind::RecvFn, {}, {}, 1));
  add(make("recvmsg", LibKind::RecvFn, {}, {}, 1));
  add(make("read", LibKind::RecvFn, {}, {}, 1));
  add(make("SSL_read", LibKind::RecvFn, {}, {}, 1));
  add(make("CyaSSL_read", LibKind::RecvFn, {}, {}, 1));
  add(make("mqtt_recv_message", LibKind::RecvFn, {}, {}, 1));
  add(make("websocket_recv", LibKind::RecvFn, {}, {}, 1));

  // ---- fun_out anchors (response transmission).
  add(make("send", LibKind::SendFn, {}, /*msg_args=*/{1}));
  add(make("sendto", LibKind::SendFn, {}, {1}));
  add(make("sendmsg", LibKind::SendFn, {}, {1}));
  add(make("write", LibKind::SendFn, {}, {1}));

  // ---- Device-cloud message delivery (taint sources of §IV-B). The paper
  // names SSL/CyaSSL writes, curl, and mosquitto explicitly.
  add(make("SSL_write", LibKind::MsgDeliver, {}, {1}));
  add(make("CyaSSL_write", LibKind::MsgDeliver, {}, {1}));
  add(make("wolfSSL_write", LibKind::MsgDeliver, {}, {1}));
  add(make("mbedtls_ssl_write", LibKind::MsgDeliver, {}, {1}));
  add(make("curl_easy_perform", LibKind::MsgDeliver, {}, {1}));
  add(make("http_post", LibKind::MsgDeliver, {}, {0, 1}));
  add(make("http_get", LibKind::MsgDeliver, {}, {0}));
  add(make("https_request", LibKind::MsgDeliver, {}, {0, 1}));
  add(make("mosquitto_publish", LibKind::MsgDeliver, {}, {2, 4}));
  add(make("mqtt_publish", LibKind::MsgDeliver, {}, {1, 2}));
  add(make("MQTTClient_publishMessage", LibKind::MsgDeliver, {}, {1, 2}));
  add(make("coap_send", LibKind::MsgDeliver, {}, {1}));

  // ---- Field sources. Their results terminate backward taint (§IV-B).
  const DataflowSummary ret_source{.dst = -1, .srcs = {}, .srcs_from = -1,
                                   .dst_also_src = false,
                                   .is_field_source = true};
  add(make("nvram_get", LibKind::SourceNvram, ret_source, {}, -1, -1, /*key_arg=*/0));
  add(make("nvram_safe_get", LibKind::SourceNvram, ret_source, {}, -1, -1, 0));
  add(make("nvram_bufget", LibKind::SourceNvram, ret_source, {}, -1, -1, 1));
  add(make("config_get", LibKind::SourceConfig, ret_source, {}, -1, -1, 0));
  add(make("uci_get", LibKind::SourceConfig, ret_source, {}, -1, -1, 0));
  add(make("ini_read", LibKind::SourceConfig, ret_source, {}, -1, -1, 1));
  add(make("cfg_lookup", LibKind::SourceConfig, ret_source, {}, -1, -1, 1));
  add(make("getenv", LibKind::SourceEnv, ret_source, {}, -1, -1, 0));
  add(make("web_get_param", LibKind::SourceFrontend, ret_source, {}, -1, -1, 1));
  add(make("cgi_get_input", LibKind::SourceFrontend, ret_source, {}, -1, -1, 0));
  add(make("ui_get_field", LibKind::SourceFrontend, ret_source, {}, -1, -1, 1));

  // Device-info getters writing through their first argument.
  const DataflowSummary arg0_source{.dst = 0, .srcs = {}, .srcs_from = -1,
                                    .dst_also_src = false,
                                    .is_field_source = true};
  add(make("get_mac_address", LibKind::SourceDevInfo, arg0_source));
  add(make("get_serial_number", LibKind::SourceDevInfo, arg0_source));
  add(make("get_device_id", LibKind::SourceDevInfo, arg0_source));
  add(make("get_hw_version", LibKind::SourceDevInfo, arg0_source));
  add(make("get_fw_version", LibKind::SourceDevInfo, arg0_source));
  add(make("get_model_name", LibKind::SourceDevInfo, arg0_source));
  add(make("get_uuid", LibKind::SourceDevInfo, arg0_source));

  // ---- String operations (message assembly via formatted output, §IV-C
  // way (2)).
  add(make("sprintf", LibKind::StringOp,
           {.dst = 0, .srcs = {1}, .srcs_from = 2, .dst_also_src = false,
            .is_field_source = false}));
  add(make("snprintf", LibKind::StringOp,
           {.dst = 0, .srcs = {2}, .srcs_from = 3, .dst_also_src = false,
            .is_field_source = false}));
  add(make("strcpy", LibKind::StringOp,
           {.dst = 0, .srcs = {1}, .srcs_from = -1, .dst_also_src = false,
            .is_field_source = false}));
  add(make("strncpy", LibKind::StringOp,
           {.dst = 0, .srcs = {1}, .srcs_from = -1, .dst_also_src = false,
            .is_field_source = false}));
  add(make("strcat", LibKind::StringOp,
           {.dst = 0, .srcs = {1}, .srcs_from = -1, .dst_also_src = true,
            .is_field_source = false}));
  add(make("strncat", LibKind::StringOp,
           {.dst = 0, .srcs = {1}, .srcs_from = -1, .dst_also_src = true,
            .is_field_source = false}));
  add(make("memcpy", LibKind::StringOp,
           {.dst = 0, .srcs = {1}, .srcs_from = -1, .dst_also_src = false,
            .is_field_source = false}));
  add(make("memmove", LibKind::StringOp,
           {.dst = 0, .srcs = {1}, .srcs_from = -1, .dst_also_src = false,
            .is_field_source = false}));
  add(make("memset", LibKind::StringOp,
           {.dst = 0, .srcs = {1}, .srcs_from = -1, .dst_also_src = false,
            .is_field_source = false}));
  add(make("strdup", LibKind::StringOp,
           {.dst = -1, .srcs = {0}, .srcs_from = -1, .dst_also_src = false,
            .is_field_source = false}));
  add(make("strtok", LibKind::StringOp,
           {.dst = -1, .srcs = {0}, .srcs_from = -1, .dst_also_src = false,
            .is_field_source = false}));
  add(make("strstr", LibKind::StringOp,
           {.dst = -1, .srcs = {0}, .srcs_from = -1, .dst_also_src = false,
            .is_field_source = false}));
  add(make("strlen", LibKind::StringOp, {}));
  add(make("strcmp", LibKind::StringOp, {}));
  add(make("strncmp", LibKind::StringOp, {}));
  add(make("atoi", LibKind::StringOp,
           {.dst = -1, .srcs = {0}, .srcs_from = -1, .dst_also_src = false,
            .is_field_source = false}));

  // ---- cJSON-style message assembly (§IV-C way (1)).
  add(make("cJSON_CreateObject", LibKind::JsonOp, {}));
  add(make("cJSON_AddStringToObject", LibKind::JsonOp,
           {.dst = 0, .srcs = {1, 2}, .srcs_from = -1, .dst_also_src = true,
            .is_field_source = false}));
  add(make("cJSON_AddNumberToObject", LibKind::JsonOp,
           {.dst = 0, .srcs = {1, 2}, .srcs_from = -1, .dst_also_src = true,
            .is_field_source = false}));
  add(make("cJSON_AddItemToObject", LibKind::JsonOp,
           {.dst = 0, .srcs = {1, 2}, .srcs_from = -1, .dst_also_src = true,
            .is_field_source = false}));
  add(make("cJSON_Print", LibKind::JsonOp,
           {.dst = -1, .srcs = {0}, .srcs_from = -1, .dst_also_src = false,
            .is_field_source = false}));
  add(make("cJSON_PrintUnformatted", LibKind::JsonOp,
           {.dst = -1, .srcs = {0}, .srcs_from = -1, .dst_also_src = false,
            .is_field_source = false}));
  add(make("cJSON_Parse", LibKind::JsonOp,
           {.dst = -1, .srcs = {0}, .srcs_from = -1, .dst_also_src = false,
            .is_field_source = false}));
  add(make("cJSON_GetObjectItem", LibKind::JsonOp,
           {.dst = -1, .srcs = {0}, .srcs_from = -1, .dst_also_src = false,
            .is_field_source = false}));
  add(make("cJSON_Delete", LibKind::JsonOp, {}));

  // ---- Crypto / encoding (Signature derivation: Signature = f(Dev-Secret),
  // §II-B business form ②).
  const auto ret_from = [](std::vector<int> srcs) {
    return DataflowSummary{.dst = -1, .srcs = std::move(srcs),
                           .srcs_from = -1, .dst_also_src = false,
                           .is_field_source = false};
  };
  add(make("md5_hex", LibKind::Crypto, ret_from({0})));
  add(make("sha1_hex", LibKind::Crypto, ret_from({0})));
  add(make("sha256_hex", LibKind::Crypto, ret_from({0})));
  add(make("hmac_sha1", LibKind::Crypto, ret_from({0, 1})));
  add(make("hmac_sha256", LibKind::Crypto, ret_from({0, 1})));
  add(make("hmac_md5", LibKind::Crypto, ret_from({0, 1})));
  add(make("aes_cbc_encrypt", LibKind::Crypto, ret_from({0, 1})));
  add(make("base64_encode", LibKind::Crypto, ret_from({0})));
  add(make("url_encode", LibKind::Crypto, ret_from({0})));
  add(make("sign_request", LibKind::Crypto, ret_from({0, 1})));

  // ---- File reads (hard-coded Dev-Secret pattern (2) of §IV-E:
  // <Variable = Function(Constant)>).
  add(make("read_file", LibKind::FileOp, ret_from({0})));
  add(make("fopen", LibKind::FileOp, ret_from({0})));
  add(make("fread", LibKind::FileOp,
           {.dst = 0, .srcs = {3}, .srcs_from = -1, .dst_also_src = false,
            .is_field_source = false}));
  add(make("fgets", LibKind::FileOp,
           {.dst = 0, .srcs = {2}, .srcs_from = -1, .dst_also_src = false,
            .is_field_source = false}));
  add(make("load_cert_file", LibKind::FileOp, ret_from({0})));

  // ---- Event registration (asynchronous dispatch, §IV-A).
  add(make("event_loop_register", LibKind::EventReg, {}, {}, -1,
           /*callback_arg=*/1));
  add(make("uloop_fd_add", LibKind::EventReg, {}, {}, -1, 1));
  add(make("mqtt_set_message_callback", LibKind::EventReg, {}, {}, -1, 1));
  add(make("mosquitto_message_callback_set", LibKind::EventReg, {}, {}, -1,
           1));
  add(make("timer_register", LibKind::EventReg, {}, {}, -1, 1));
  add(make("register_signal_handler", LibKind::EventReg, {}, {}, -1, 1));

  // ---- Local IPC (noise handlers that must NOT be classified as
  // device-cloud, §IV-A "IPC handlers are not request handlers").
  add(make("unix_socket_recv", LibKind::Ipc, {}, {}, 1));
  add(make("unix_socket_send", LibKind::Ipc, {}, {1}));
  add(make("msgrcv", LibKind::Ipc, {}, {}, 1));
  add(make("msgsnd", LibKind::Ipc, {}, {1}));
  add(make("ubus_invoke", LibKind::Ipc, {}, {1}));

  // ---- Misc.
  add(make("malloc", LibKind::Alloc, {}));
  add(make("calloc", LibKind::Alloc, {}));
  add(make("free", LibKind::Alloc, {}));
  add(make("socket", LibKind::Other, {}));
  add(make("connect", LibKind::Other, {}));
  add(make("close", LibKind::Other, {}));
  add(make("sleep", LibKind::Other, {}));
  add(make("time", LibKind::Other, {}));
  add(make("rand", LibKind::Other, {}));
  add(make("printf", LibKind::Other, {}));
  add(make("syslog", LibKind::Other, {}));
  add(make("SSL_new", LibKind::Other, {}));
  add(make("SSL_connect", LibKind::Other, {}));
  add(make("curl_easy_init", LibKind::Other, {}));
  add(make("curl_easy_setopt", LibKind::Other, {}));
  add(make("mosquitto_new", LibKind::Other, {}));
  add(make("mosquitto_connect", LibKind::Other, {}));

  // LibId is a u16 with 0 reserved for "not catalogued".
  FIRMRES_CHECK(functions_.size() < 0xFFFF);
  for (const auto& f : functions_)
    by_kind_[static_cast<std::size_t>(f.kind)].push_back(f.name);
}

const LibraryModel& LibraryModel::instance() {
  static const LibraryModel model;
  return model;
}

const LibFunction* LibraryModel::find(std::string_view name) const {
  const auto it = index_.find(name);
  return it == index_.end() ? nullptr : &functions_[it->second];
}

bool LibraryModel::is_kind(std::string_view name, LibKind kind) const {
  const LibFunction* f = find(name);
  return f != nullptr && f->kind == kind;
}

bool LibraryModel::is_field_source(std::string_view name) const {
  const LibFunction* f = find(name);
  if (f == nullptr) return false;
  switch (f->kind) {
    case LibKind::SourceNvram:
    case LibKind::SourceConfig:
    case LibKind::SourceEnv:
    case LibKind::SourceFrontend:
    case LibKind::SourceDevInfo:
      return true;
    default:
      return false;
  }
}

LibId LibraryModel::id_of(std::string_view name) const {
  const auto it = index_.find(name);
  return it == index_.end() ? 0 : static_cast<LibId>(it->second + 1);
}

const LibFunction* LibraryModel::by_id(LibId id) {
  if (id == 0) return nullptr;
  const LibraryModel& model = instance();
  FIRMRES_CHECK_MSG(id <= model.functions_.size(), "LibId out of range");
  return &model.functions_[id - 1];
}

const std::vector<std::string>& LibraryModel::names_of_kind(
    LibKind kind) const {
  return by_kind_[static_cast<std::size_t>(kind)];
}

}  // namespace firmres::ir
