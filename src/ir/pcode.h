// PcodeOp: one P-Code operation.
//
// Basic form per the paper (§IV-C): <Address : Output OP Input1, Input2, …>.
// Direct calls carry the resolved callee symbol so call-graph construction
// does not need a relocation pass; indirect calls (CallInd) carry the
// function-pointer operand only — this asymmetry is what makes asynchronous
// (event-registered) handlers invisible to direct control flow, the property
// §IV-A's identification step keys on.
//
// Storage model (docs/IR.md): ops live in contiguous per-block vectors,
// operand lists are spans into the owning Program's OperandArena, and the
// callee symbol is interned in the Program's StringTable. Call targets are
// additionally pre-resolved to dense ids at construction time
// (Program::set_call_target): `callee_fn` indexes the program's function
// table and `lib_id` indexes LibraryModel::all(), so the analyses' inner
// loops never do a string-keyed map lookup per call op.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>

#include "ir/arena.h"
#include "ir/library.h"
#include "ir/opcodes.h"
#include "ir/varnode.h"

namespace firmres::ir {

struct PcodeOp {
  std::uint64_t address = 0;  ///< program-unique op address
  OpCode opcode = OpCode::Copy;
  std::optional<VarNode> output;
  /// Arena-backed operand list (stable for the Program's lifetime).
  std::span<const VarNode> inputs;
  /// For OpCode::Call: resolved callee symbol name, interned in the owning
  /// Program's StringTable. Empty otherwise. Set via
  /// Program::set_call_target, which keeps the three resolved forms below
  /// in sync.
  std::string_view callee;
  /// Interned id of `callee` (0 when not a direct call).
  StrId callee_id = 0;
  /// Dense id of the in-program callee Function (import thunks included);
  /// kNoFunc when the program does not define the symbol.
  FuncId callee_fn = kNoFunc;
  /// 1-based LibraryModel index of the callee; 0 when the callee is not a
  /// catalogued library function.
  LibId lib_id = 0;

  bool is_call_to(std::string_view name) const {
    return opcode == OpCode::Call && callee == name;
  }

  /// The callee's LibraryModel summary, or nullptr. Replaces per-op
  /// LibraryModel::find(op.callee) string lookups on hot paths.
  const LibFunction* lib() const { return LibraryModel::by_id(lib_id); }
};

}  // namespace firmres::ir
