// PcodeOp: one P-Code operation.
//
// Basic form per the paper (§IV-C): <Address : Output OP Input1, Input2, …>.
// Direct calls carry the resolved callee symbol so call-graph construction
// does not need a relocation pass; indirect calls (CallInd) carry the
// function-pointer operand only — this asymmetry is what makes asynchronous
// (event-registered) handlers invisible to direct control flow, the property
// §IV-A's identification step keys on.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ir/opcodes.h"
#include "ir/varnode.h"

namespace firmres::ir {

struct PcodeOp {
  std::uint64_t address = 0;  ///< program-unique op address
  OpCode opcode = OpCode::Copy;
  std::optional<VarNode> output;
  std::vector<VarNode> inputs;
  /// For OpCode::Call: resolved callee symbol name. Empty otherwise.
  std::string callee;

  bool is_call_to(std::string_view name) const {
    return opcode == OpCode::Call && callee == name;
  }
};

}  // namespace firmres::ir
