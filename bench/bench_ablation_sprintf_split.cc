// Ablation — partial-message separation (§IV-C, Listing 3): classify
// sprintf-assembled fields with and without substituting each field's own
// format piece into its slice. Without separation, every field of a
// multi-field sprintf sees every sibling's keyword — the noise the paper's
// clustering step exists to remove.
#include <benchmark/benchmark.h>

#include "analysis/call_graph.h"
#include "bench_util.h"
#include "core/truth_match.h"

namespace {

using namespace firmres;

struct SplitStats {
  int fields = 0;
  int correct = 0;
  double accuracy() const {
    return fields == 0 ? 0.0
                       : static_cast<double>(correct) /
                             static_cast<double>(fields);
  }
};

/// Classify every sprintf-device field with the keyword model over slices
/// generated with the given splitting option.
SplitStats evaluate(bool split, const std::vector<fw::FirmwareImage>& corpus) {
  const core::KeywordModel model;
  SplitStats stats;
  for (const fw::FirmwareImage& image : corpus) {
    if (image.profile.script_based ||
        image.profile.assembly != fw::AssemblyStyle::Sprintf)
      continue;
    const auto* exec = image.file(image.truth.device_cloud_executable);
    const analysis::CallGraph cg(*exec->program);
    const core::MftBuilder builder(*exec->program, cg);
    for (const core::Mft& mft : builder.build_all()) {
      const fw::MessageTruth* truth =
          image.truth.message_at(mft.delivery_op->address);
      if (truth == nullptr || truth->spec.lan_destination) continue;
      const core::SliceGenerator gen(
          mft, core::SliceGenerator::Options{.split_formats = split});
      for (const core::FieldSlice& s : gen.slices()) {
        if (s.role != core::LeafRole::Field) continue;
        // Ground truth via the field's recovered key / source.
        core::ReconstructedField field;
        field.key = s.recovered_key;
        field.source_detail = s.leaf->detail;
        const fw::Primitive want =
            core::truth_primitive(field, truth->spec);
        if (want == fw::Primitive::None) continue;  // skip noise/meta
        ++stats.fields;
        stats.correct += model.classify(s.slice_text) == want ? 1 : 0;
      }
    }
  }
  return stats;
}

void print_ablation() {
  const auto corpus = fw::synthesize_corpus();
  const SplitStats with = evaluate(true, corpus);
  const SplitStats without = evaluate(false, corpus);

  std::printf("ABLATION: PARTIAL-MESSAGE SEPARATION (§IV-C, Listing 3)\n");
  bench::print_rule();
  std::printf("%-42s %-10s %-10s %-10s\n", "configuration", "fields",
              "correct", "accuracy");
  bench::print_rule();
  std::printf("%-42s %-10d %-10d %-9.2f%%\n",
              "with delimiter splitting (FIRMRES)", with.fields, with.correct,
              100 * with.accuracy());
  std::printf("%-42s %-10d %-10d %-9.2f%%\n",
              "without splitting (full format in slice)", without.fields,
              without.correct, 100 * without.accuracy());
  bench::print_rule();
  std::printf(
      "Primitive-class fields of sprintf devices only. Without separation, "
      "sibling keywords bleed\ninto each slice and the first dictionary hit "
      "wins regardless of which field is being labeled.\n\n");
}

void BM_SliceGeneration(benchmark::State& state) {
  const auto image = fw::synthesize(fw::profile_by_id(14));
  const auto* exec = image.file(image.truth.device_cloud_executable);
  const analysis::CallGraph cg(*exec->program);
  const core::MftBuilder builder(*exec->program, cg);
  const auto mfts = builder.build_all();
  const bool split = state.range(0) != 0;
  for (auto _ : state) {
    for (const core::Mft& mft : mfts) {
      core::SliceGenerator gen(
          mft, core::SliceGenerator::Options{.split_formats = split});
      benchmark::DoNotOptimize(gen.slices().size());
    }
  }
}
BENCHMARK(BM_SliceGeneration)->Arg(0)->Arg(1);

}  // namespace

int main(int argc, char** argv) {
  firmres::support::set_log_level(firmres::support::LogLevel::Warn);
  print_ablation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
