// Table III — "Summary of Discovered Vulnerabilities": hunts the corpus
// with attacker-only knowledge and prints every confirmed flawed interface;
// benchmarks flagging + probing.
//
// Paper: 14 vulnerabilities in 8 devices (13 previously unknown +
// CVE-2023-2586); 26 reported messages, 15 confirmed after manual review.
#include <benchmark/benchmark.h>

#include <set>

#include "bench_util.h"

namespace {

using namespace firmres;

void print_table3() {
  const core::KeywordModel model;
  const bench::CorpusRun run = bench::run_corpus(model);

  std::printf("TABLE III: SUMMARY OF DISCOVERED VULNERABILITIES\n");
  bench::print_rule(120);
  std::printf("%-6s %-52s %-44s %s\n", "Device", "Functionality",
              "Path / Params", "Consequence");
  bench::print_rule(120);

  int reported = 0, confirmed = 0, known = 0, false_alarms = 0;
  std::set<int> devices;
  for (std::size_t i = 0; i < run.corpus.size(); ++i) {
    if (run.corpus[i].profile.script_based) continue;
    const auto result =
        cloudsim::VulnHunter(run.net).hunt(run.analyses[i], run.corpus[i]);
    reported += result.reported_messages;
    false_alarms += result.false_alarms;
    for (const cloudsim::VulnFinding& f : result.confirmed) {
      ++confirmed;
      known += f.previously_known ? 1 : 0;
      devices.insert(f.device_id);
      std::printf("%-6d %-52.52s %-44.44s %.60s%s\n", f.device_id,
                  f.functionality.c_str(),
                  (f.path + " [" + f.params + "]").c_str(),
                  f.consequence.c_str(),
                  f.previously_known ? " (known: CVE-2023-2586)" : "");
    }
  }
  bench::print_rule(120);
  std::printf(
      "reported flawed messages: %d (paper: 26)\n"
      "confirmed vulnerabilities: %d in %zu devices (paper: 14 in 8)\n"
      "previously known: %d (paper: 1, CVE-2023-2586)\n"
      "rejected during verification: %d (paper: 11)\n",
      reported, confirmed, devices.size(), known, false_alarms);

  // Probe telemetry from the registry (docs/OBSERVABILITY.md): every hunt
  // probe flowed through the instrumented Prober::send hop above.
  const support::metrics::Snapshot snap = support::metrics::snapshot(true);
  std::uint64_t probes = 0;
  for (const auto& c : snap.counters)
    if (c.name == "probe.requests") probes = c.value;
  for (const auto& h : snap.histograms) {
    if (h.name != "probe.latency_us") continue;
    std::printf(
        "probe telemetry: %llu requests, latency p50 %.1f us  p90 %.1f us  "
        "p99 %.1f us  max %.1f us\n\n",
        static_cast<unsigned long long>(probes),
        support::metrics::histogram_percentile(h, 0.50),
        support::metrics::histogram_percentile(h, 0.90),
        support::metrics::histogram_percentile(h, 0.99),
        support::metrics::histogram_percentile(h, 1.0));
  }
}

void BM_HuntDevice(benchmark::State& state) {
  static const core::KeywordModel model;
  const auto image =
      fw::synthesize(fw::profile_by_id(static_cast<int>(state.range(0))));
  cloudsim::CloudNetwork net;
  net.enroll(image);
  const auto analysis = core::Pipeline(model).analyze(image);
  const cloudsim::VulnHunter hunter(net);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hunter.hunt(analysis, image));
  }
}
BENCHMARK(BM_HuntDevice)->Arg(17)->Arg(20);

void BM_CloudRoundTrip(benchmark::State& state) {
  const auto image = firmres::fw::synthesize(firmres::fw::profile_by_id(20));
  cloudsim::CloudNetwork net;
  net.enroll(image);
  cloudsim::Request r;
  r.host = image.identity.cloud_host;
  r.path = "/store-server/api/v1/storages/auth";
  r.fields = {{"deviceId", image.identity.device_id}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.send(r));
  }
}
BENCHMARK(BM_CloudRoundTrip);

}  // namespace

int main(int argc, char** argv) {
  firmres::support::set_log_level(firmres::support::LogLevel::Warn);
  print_table3();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
