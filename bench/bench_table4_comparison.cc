// Table IV — "Comparison of Existing Works": FIRMRES vs LEAKSCOPE-analogue
// vs IOT-APISCANNER-analogue on their respective (synthetic) inputs.
//
// Paper row: FIRMRES 246 interfaces @ 87.5 %, LEAKSCOPE 32 @ 100 %,
// IOT-APISCANNER 157 @ 100 %. The baselines' perfect recovery comes from
// dynamic/exact inputs; FIRMRES trades accuracy for reach into
// undocumented vendor clouds.
#include <benchmark/benchmark.h>

#include "baseline/apiscanner.h"
#include "baseline/leakscope.h"
#include "bench_util.h"
#include "support/strings.h"

namespace {

using namespace firmres;

void print_table4() {
  // --- FIRMRES column: interfaces = valid messages; accuracy = valid /
  // identified (the §V-F "accuracy of recovery").
  const core::KeywordModel model;
  support::set_log_level(support::LogLevel::Warn);
  const auto corpus = fw::synthesize_corpus();
  cloudsim::CloudNetwork net;
  for (const auto& image : corpus) net.enroll(image);
  const std::vector<cloudsim::Table2Row> rows =
      cloudsim::evaluate_corpus(corpus, net, model, {.jobs = 0});
  const auto totals = cloudsim::total_rows(rows);

  // --- Baseline columns on their synthetic inputs (paper-sized corpora).
  support::Rng rng(0xBA5E);
  const auto apps = baseline::synthesize_app_corpus(12, 32, rng);
  const auto leak = baseline::run_leakscope(apps);
  const auto docs = baseline::synthesize_platform_docs(6, 157, rng);
  const auto scan = baseline::run_apiscanner(docs);

  std::printf("TABLE IV: COMPARISON OF EXISTING WORKS\n");
  bench::print_rule(104);
  std::printf("%-28s %-22s %-24s %-24s\n", "", "FIRMRES", "LEAKSCOPE [40]",
              "IOT-APISCANNER [25]");
  bench::print_rule(104);
  std::printf("%-28s %-22s %-24s %-24s\n", "Inputs", "IoT firmware",
              "Mobile App", "Mobile IoT App");
  std::printf("%-28s %-22s %-24s %-24s\n", "Target Cloud Platforms",
              "IoT vendors' clouds", "AWS/Azure/Firebase", "IoT platforms");
  std::printf("%-28s %-22d %-24d %-24d\n", "# of Cloud Interfaces",
              totals.sum.valid_msgs, leak.interfaces_recovered,
              scan.interfaces_tested);
  std::printf("%-28s %-22s %-24s %-24s\n", "Accuracy of Recovery",
              support::format("%.1f%%", 100.0 * totals.sum.valid_msgs /
                                            totals.sum.identified_msgs)
                  .c_str(),
              support::format("%.0f%%", 100 * leak.accuracy()).c_str(),
              support::format("%.0f%%", 100 * scan.accuracy()).c_str());
  bench::print_rule(104);
  std::printf(
      "(paper: FIRMRES 246 @ 87.5%%, LEAKSCOPE 32 @ 100%%, IOT-APISCANNER "
      "157 @ 100%%)\n"
      "LeakScope-analogue misconfigurations found: %d;  APIScanner-analogue "
      "broken-auth APIs: %zu\n\n",
      leak.misconfigurations(), scan.unauthorized.size());
}

void BM_LeakScope(benchmark::State& state) {
  support::Rng rng(1);
  const auto apps = baseline::synthesize_app_corpus(12, 32, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(baseline::run_leakscope(apps));
  }
}
BENCHMARK(BM_LeakScope);

void BM_ApiScanner(benchmark::State& state) {
  support::Rng rng(2);
  const auto docs = baseline::synthesize_platform_docs(6, 157, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(baseline::run_apiscanner(docs));
  }
}
BENCHMARK(BM_ApiScanner);

}  // namespace

int main(int argc, char** argv) {
  firmres::support::set_log_level(firmres::support::LogLevel::Warn);
  print_table4();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
