// Ablation — device-cloud executable identification (§IV-A): the full
// P_f + asynchronous filter vs the naive "has recv+send" heuristic and a
// no-async-filter variant. Ground truth: the synthesizer knows which
// executable really talks to the cloud.
#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace {

using namespace firmres;

struct IdentStats {
  int true_positives = 0;
  int false_positives = 0;
  int false_negatives = 0;
  double precision() const {
    const int denom = true_positives + false_positives;
    return denom == 0 ? 0.0 : static_cast<double>(true_positives) / denom;
  }
  double recall() const {
    const int denom = true_positives + false_negatives;
    return denom == 0 ? 0.0 : static_cast<double>(true_positives) / denom;
  }
};

IdentStats evaluate(const core::ExecutableIdentifier::Options& options,
                    const std::vector<fw::FirmwareImage>& corpus) {
  const core::ExecutableIdentifier identifier(options);
  IdentStats stats;
  for (const fw::FirmwareImage& image : corpus) {
    for (const fw::FirmwareFile& file : image.files) {
      if (file.kind != fw::FirmwareFile::Kind::Executable) continue;
      const bool truth = file.path == image.truth.device_cloud_executable;
      const bool predicted = identifier.analyze(*file.program).is_device_cloud;
      if (predicted && truth) ++stats.true_positives;
      if (predicted && !truth) ++stats.false_positives;
      if (!predicted && truth) ++stats.false_negatives;
    }
  }
  return stats;
}

void print_ablation() {
  const auto corpus = fw::synthesize_corpus();

  core::ExecutableIdentifier::Options full;
  core::ExecutableIdentifier::Options no_async = full;
  no_async.require_async = false;
  core::ExecutableIdentifier::Options no_pf = full;
  no_pf.use_pf_scoring = false;
  core::ExecutableIdentifier::Options naive = full;
  naive.use_pf_scoring = false;
  naive.require_async = false;
  core::ExecutableIdentifier::Options no_devirt = full;
  no_devirt.devirtualize = false;

  std::printf("ABLATION: DEVICE-CLOUD EXECUTABLE IDENTIFICATION (§IV-A)\n");
  bench::print_rule();
  std::printf("%-34s %-6s %-6s %-6s %-10s %-8s\n", "configuration", "TP",
              "FP", "FN", "precision", "recall");
  bench::print_rule();
  const struct {
    const char* name;
    core::ExecutableIdentifier::Options options;
  } configs[] = {
      {"full (P_f + async filter)", full},
      {"no async filter", no_async},
      {"no P_f scoring", no_pf},
      {"naive (any recv+send pair)", naive},
      {"no devirtualization", no_devirt},
  };
  for (const auto& [name, options] : configs) {
    const IdentStats s = evaluate(options, corpus);
    std::printf("%-34s %-6d %-6d %-6d %-10.3f %-8.3f\n", name,
                s.true_positives, s.false_positives, s.false_negatives,
                s.precision(), s.recall());
  }
  bench::print_rule();
  std::printf(
      "The async filter removes directly-invoked LAN servers; P_f scoring "
      "removes event-driven IPC daemons.\nOnly the combination isolates the "
      "device-cloud executables (paper §IV-A, Fig. 4).\nWithout "
      "devirtualization, handlers sending through function pointers lose "
      "their recv→send path (missed devices).\n\n");
}

void BM_IdentifyExecutable(benchmark::State& state) {
  const auto image = fw::synthesize(fw::profile_by_id(14));
  const auto* exec = image.file(image.truth.device_cloud_executable);
  const core::ExecutableIdentifier identifier;
  for (auto _ : state) {
    benchmark::DoNotOptimize(identifier.analyze(*exec->program));
  }
}
BENCHMARK(BM_IdentifyExecutable);

}  // namespace

int main(int argc, char** argv) {
  firmres::support::set_log_level(firmres::support::LogLevel::Warn);
  print_ablation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
