// Ablation — taint-analysis budget (§IV-B / §V-E): the paper's strategy is
// to overtaint, and "the time is mostly spent on performing the taint
// analysis". This bench sweeps the MFT node budget to show the
// completeness/cost trade-off: tight budgets truncate trees (losing
// confirmed fields), generous ones only pay time.
#include <benchmark/benchmark.h>

#include <chrono>

#include "analysis/call_graph.h"
#include "bench_util.h"
#include "core/truth_match.h"

namespace {

using namespace firmres;

struct BudgetStats {
  std::size_t budget = 0;
  int messages = 0;
  int fields = 0;
  int confirmed = 0;
  double seconds = 0.0;
};

BudgetStats evaluate(std::size_t budget,
                     const std::vector<fw::FirmwareImage>& corpus) {
  BudgetStats stats;
  stats.budget = budget;
  const core::KeywordModel model;
  const core::Reconstructor reconstructor(model);
  const auto start = std::chrono::steady_clock::now();
  for (const fw::FirmwareImage& image : corpus) {
    if (image.profile.script_based) continue;
    const auto* exec = image.file(image.truth.device_cloud_executable);
    const analysis::CallGraph cg(*exec->program);
    core::MftBuilder::Options opts;
    opts.max_nodes = budget;
    const core::MftBuilder builder(*exec->program, cg, opts);
    for (const core::Mft& mft : builder.build_all()) {
      const auto msg = reconstructor.reconstruct_one(mft, exec->path);
      if (!msg.has_value()) continue;
      ++stats.messages;
      const fw::MessageTruth* truth =
          image.truth.message_at(msg->delivery_address);
      for (const core::ReconstructedField& field : msg->fields) {
        ++stats.fields;
        if (truth != nullptr &&
            core::truth_primitive(field, truth->spec) != fw::Primitive::None)
          ++stats.confirmed;
      }
    }
  }
  stats.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return stats;
}

void print_ablation() {
  const auto corpus = fw::synthesize_corpus();
  std::printf("ABLATION: TAINT NODE BUDGET (§IV-B overtainting)\n");
  bench::print_rule();
  std::printf("%-10s %-10s %-10s %-20s %-10s\n", "budget", "messages",
              "fields", "primitive-confirmed", "time(ms)");
  bench::print_rule();
  for (const std::size_t budget : {16u, 32u, 64u, 256u, 1024u, 8192u}) {
    const BudgetStats s = evaluate(budget, corpus);
    std::printf("%-10zu %-10d %-10d %-20d %-10.1f\n", s.budget, s.messages,
                s.fields, s.confirmed, 1e3 * s.seconds);
  }
  bench::print_rule();
  std::printf(
      "Tight budgets truncate MFTs before the field sources are reached "
      "(fields and confirmed primitives\ndrop); past the knee, extra budget "
      "costs only time — the paper's overtaint-by-default stance.\n\n");
}

void BM_BuildAllWithBudget(benchmark::State& state) {
  const auto image = fw::synthesize(fw::profile_by_id(14));
  const auto* exec = image.file(image.truth.device_cloud_executable);
  const analysis::CallGraph cg(*exec->program);
  core::MftBuilder::Options opts;
  opts.max_nodes = static_cast<std::size_t>(state.range(0));
  const core::MftBuilder builder(*exec->program, cg, opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(builder.build_all());
  }
}
BENCHMARK(BM_BuildAllWithBudget)->Arg(64)->Arg(1024)->Arg(8192);

}  // namespace

int main(int argc, char** argv) {
  firmres::support::set_log_level(firmres::support::LogLevel::Warn);
  print_ablation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
