// §V-C — "Field Semantic Recovery": builds the auto-labeled slice dataset,
// trains the attention-TextCNN classifier, and reports accuracy against the
// paper's figures (92.23 % validation / 91.74 % test on 30,941 slices).
//
// Environment knobs (so CI stays fast while a full run is reachable):
//   FIRMRES_DATASET_DEVICES (default 40)
//   FIRMRES_TRAIN_EPOCHS    (default 4)
#include <benchmark/benchmark.h>

#include <cstdlib>

#include "bench_util.h"
#include "nlp/trainer.h"

namespace {

using namespace firmres;

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : fallback;
}

std::unique_ptr<nlp::SliceClassifier> g_model;
nlp::Dataset g_dataset;

void train_and_report() {
  nlp::DatasetConfig dc;
  dc.num_devices = env_int("FIRMRES_DATASET_DEVICES", 40);
  g_dataset = nlp::build_dataset(dc);
  std::printf("FIELD SEMANTIC RECOVERY (BERT-TextCNN stand-in)\n");
  bench::print_rule();
  std::printf(
      "dataset: %zu slices from %d pseudo-devices (train %zu / val %zu / "
      "test %zu, 7:2:1)   (paper: 30,941 slices from 547 executables)\n",
      g_dataset.total(), dc.num_devices, g_dataset.train.size(),
      g_dataset.val.size(), g_dataset.test.size());
  std::printf("label review agreement with ground truth: %.2f%%\n",
              100 * nlp::label_agreement(g_dataset.train));

  nlp::TrainConfig tc;
  tc.epochs = env_int("FIRMRES_TRAIN_EPOCHS", 4);
  nlp::ModelConfig mc;
  g_model = nlp::train_classifier(g_dataset, mc, tc);
  std::printf("model: %zu parameters, vocab %d, %d epochs\n",
              g_model->parameter_count(), g_model->vocab().size(), tc.epochs);

  const auto val = nlp::evaluate_labels(*g_model, g_dataset.val);
  const auto test = nlp::evaluate_labels(*g_model, g_dataset.test);
  const auto truth = nlp::evaluate_truth(*g_model, g_dataset.test);
  std::printf(
      "validation accuracy: %.2f%%   (paper: 92.23%%)\n"
      "test accuracy:       %.2f%%   (paper: 91.74%%)\n"
      "accuracy vs ground truth (test): %.2f%%\n\n",
      100 * val.accuracy(), 100 * test.accuracy(), 100 * truth.accuracy());
}

void BM_ClassifySlice(benchmark::State& state) {
  const std::string slice = g_dataset.test.empty()
                                ? std::string("CALL nvram_get mac")
                                : g_dataset.test.front().text;
  for (auto _ : state) {
    benchmark::DoNotOptimize(g_model->classify(slice));
  }
}
BENCHMARK(BM_ClassifySlice);

void BM_TrainExample(benchmark::State& state) {
  const auto& example = g_dataset.train.front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        g_model->train_example(example.text, example.label));
  }
  g_model->apply_gradients(0.0f);  // discard accumulated grads
}
BENCHMARK(BM_TrainExample);

}  // namespace

int main(int argc, char** argv) {
  firmres::support::set_log_level(firmres::support::LogLevel::Warn);
  train_and_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  g_model.reset();
  return 0;
}
