// Table II — "Overall Results of Message Reconstruction": per-device
// message/field identification, validity, clustering thresholds, and
// semantics accuracy; benchmarks the per-device pipeline.
//
// Paper totals for comparison: 281 identified / 246 valid messages,
// 2019 identified / 1785 confirmed fields (88.41 %), 1641 accurate
// semantics (91.93 %).
#include <benchmark/benchmark.h>

#include <cstdlib>

#include "bench_util.h"
#include "nlp/trainer.h"

namespace {

using namespace firmres;

void print_table2() {
  const core::KeywordModel model;
  support::set_log_level(support::LogLevel::Warn);
  const auto corpus = fw::synthesize_corpus();
  cloudsim::CloudNetwork net;
  for (const auto& image : corpus) net.enroll(image);

  std::printf("TABLE II: OVERALL RESULTS OF MESSAGE RECONSTRUCTION\n");
  bench::print_rule();
  std::printf("%-6s | %-11s %-6s | %-11s %-10s | %-7s %-7s %-7s | %-9s\n",
              "Device", "#Identified", "#Valid", "#IdFields", "#Confirmed",
              "thd=0.5", "thd=0.6", "thd=0.7", "#Accurate");
  bench::print_rule();

  // Parallel corpus run with deterministic device-id aggregation — the
  // rows print identically for any job count.
  const std::vector<cloudsim::Table2Row> rows =
      cloudsim::evaluate_corpus(corpus, net, model, {.jobs = 0});
  for (const auto& r : rows) {
    std::printf("%-6d | %-11d %-6d | %-11d %-10d | %-7s %-7s %-7s | %-9d\n",
                r.device_id, r.identified_msgs, r.valid_msgs,
                r.identified_fields, r.confirmed_fields,
                bench::fmt_cluster(r.clusters[0]).c_str(),
                bench::fmt_cluster(r.clusters[1]).c_str(),
                bench::fmt_cluster(r.clusters[2]).c_str(),
                r.accurate_semantics);
  }
  bench::print_rule();
  const auto totals = cloudsim::total_rows(rows);
  std::printf("%-6s | %-11d %-6d | %-11d %-10d | %-23s | %-9d\n", "Total",
              totals.sum.identified_msgs, totals.sum.valid_msgs,
              totals.sum.identified_fields, totals.sum.confirmed_fields, "",
              totals.sum.accurate_semantics);
  std::printf(
      "field identification accuracy: %.2f%%   (paper: 88.41%%)\n"
      "semantics recovery accuracy:   %.2f%%   (paper: 91.93%%)\n"
      "message validity:              %d/%d = %.2f%%   (paper: 246/281 = "
      "87.54%%)\n\n",
      100 * totals.field_accuracy, 100 * totals.semantics_accuracy,
      totals.sum.valid_msgs, totals.sum.identified_msgs,
      100.0 * totals.sum.valid_msgs / totals.sum.identified_msgs);
}

// FIRMRES_NEURAL=1 re-runs the corpus with a freshly trained neural
// classifier and reports the end-to-end semantics accuracy next to the
// dictionary model's (the paper's configuration uses the learned model).
void maybe_neural_pass() {
  const char* flag = std::getenv("FIRMRES_NEURAL");
  if (flag == nullptr || flag[0] == '0') return;
  nlp::DatasetConfig dc;
  dc.num_devices = 30;
  const nlp::Dataset dataset = nlp::build_dataset(dc);
  nlp::TrainConfig tc;
  tc.epochs = 3;
  const auto model = nlp::train_classifier(dataset, nlp::ModelConfig{}, tc);
  const auto corpus = fw::synthesize_corpus();
  cloudsim::CloudNetwork net;
  for (const auto& image : corpus) net.enroll(image);
  const std::vector<cloudsim::Table2Row> rows =
      cloudsim::evaluate_corpus(corpus, net, *model, {.jobs = 0});
  const auto totals = cloudsim::total_rows(rows);
  std::printf(
      "with trained neural model: semantics accuracy %.2f%% over %d "
      "confirmed fields (paper: 91.93%%)\n\n",
      100 * totals.semantics_accuracy, totals.sum.confirmed_fields);
}

void BM_PipelinePerDevice(benchmark::State& state) {
  static const core::KeywordModel model;
  const auto image =
      fw::synthesize(fw::profile_by_id(static_cast<int>(state.range(0))));
  const core::Pipeline pipeline(model);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline.analyze(image));
  }
}
BENCHMARK(BM_PipelinePerDevice)->Arg(5)->Arg(11)->Arg(14)->Arg(17);

void BM_EvaluateDevice(benchmark::State& state) {
  static const core::KeywordModel model;
  const auto image = fw::synthesize(fw::profile_by_id(14));
  cloudsim::CloudNetwork net;
  net.enroll(image);
  const auto analysis = core::Pipeline(model).analyze(image);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cloudsim::evaluate_device(analysis, image, net));
  }
}
BENCHMARK(BM_EvaluateDevice);

}  // namespace

int main(int argc, char** argv) {
  firmres::support::set_log_level(firmres::support::LogLevel::Warn);
  const std::string json_path = bench::take_json_flag(argc, argv);
  print_table2();
  maybe_neural_pass();
  if (!json_path.empty()) {
    support::metrics::reset_all();
    const core::KeywordModel model;
    const bench::CorpusRun run = bench::run_corpus(model);
    bench::write_bench_json(json_path, "bench_table2_reconstruction",
                            run.result);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
