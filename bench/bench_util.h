// Shared helpers for the reproduction benches: corpus setup, pipeline runs,
// and table formatting. Every bench binary prints its paper artifact
// (table/figure rows) to stdout, then runs its google-benchmark timings.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "cloud/evaluation.h"
#include "cloud/vuln_hunter.h"
#include "core/corpus_runner.h"
#include "core/pipeline.h"
#include "firmware/synthesizer.h"
#include "support/error.h"
#include "support/json.h"
#include "support/logging.h"
#include "support/observability/metrics.h"
#include "support/thread_pool.h"

namespace firmres::bench {

struct CorpusRun {
  std::vector<fw::FirmwareImage> corpus;
  cloudsim::CloudNetwork net;
  /// Device-id order; index-aligned with `corpus` (ids ascend in Table I).
  std::vector<core::DeviceAnalysis> analyses;
  /// Wall/cpu split and aggregate phase timings of the analysis run.
  core::CorpusResult result;
};

/// Synthesize + analyze the full Table I corpus with the given model.
/// `jobs` as in CorpusRunner::Options (default: all hardware threads); the
/// analyses are deterministic regardless of the job count. `cache` (may be
/// null) wires an incremental AnalysisCache through the pipeline — the
/// warm-vs-cold bench comparison runs through this (docs/CACHING.md).
inline CorpusRun run_corpus(const core::SemanticsModel& model, int jobs = 0,
                            core::AnalysisCache* cache = nullptr) {
  support::set_log_level(support::LogLevel::Warn);
  CorpusRun run;
  run.corpus = fw::synthesize_corpus();
  for (const auto& image : run.corpus) run.net.enroll(image);
  core::Pipeline::Options pipeline_options;
  pipeline_options.cache = cache;
  const core::Pipeline pipeline(model, pipeline_options);
  const core::CorpusRunner runner(pipeline, {.jobs = jobs});
  run.result = runner.run(run.corpus);
  run.analyses = run.result.analyses;
  return run;
}

/// As run_corpus, but over a caller-supplied corpus and full pipeline
/// options — the component-registry benches run the shared-library corpus
/// through this with and without Options::registry (docs/COMPONENTS.md).
inline CorpusRun run_custom_corpus(
    std::vector<fw::FirmwareImage> corpus, const core::SemanticsModel& model,
    const core::Pipeline::Options& pipeline_options, int jobs = 0) {
  support::set_log_level(support::LogLevel::Warn);
  CorpusRun run;
  run.corpus = std::move(corpus);
  for (const auto& image : run.corpus) run.net.enroll(image);
  const core::Pipeline pipeline(model, pipeline_options);
  const core::CorpusRunner runner(pipeline, {.jobs = jobs});
  run.result = runner.run(run.corpus);
  run.analyses = run.result.analyses;
  return run;
}

inline std::string fmt_cluster(const std::optional<int>& c) {
  return c.has_value() ? std::to_string(*c) : "-";
}

inline void print_rule(int width = 100) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

/// Consume a `--name <value>` pair from argv before benchmark::Initialize
/// sees it (google-benchmark rejects unknown flags). Empty when absent.
inline std::string take_value_flag(int& argc, char** argv,
                                   std::string_view name) {
  std::string value;
  for (int i = 1; i < argc;) {
    if (std::string_view(argv[i]) == name && i + 1 < argc) {
      value = argv[i + 1];
      for (int k = i; k + 2 < argc; ++k) argv[k] = argv[k + 2];
      argc -= 2;
    } else {
      ++i;
    }
  }
  return value;
}

/// Consume `--json <path>`: the bench-artifact output path.
inline std::string take_json_flag(int& argc, char** argv) {
  return take_value_flag(argc, argv, "--json");
}

/// Write the machine-readable bench artifact tools/check_perf_regression.py
/// compares: per-phase wall seconds, a `total` pseudo-phase carrying the
/// wall/cpu split, and the Work-kind registry counters of the run. `commit`
/// comes from $GITHUB_SHA (CI) or $FIRMRES_COMMIT; "unknown" otherwise.
inline void write_bench_json(const std::string& path,
                             const std::string& bench_name,
                             const core::CorpusResult& result) {
  const char* sha = std::getenv("GITHUB_SHA");
  if (sha == nullptr) sha = std::getenv("FIRMRES_COMMIT");

  support::Json doc{support::JsonObject{}};
  doc.set("format", "firmres-bench");
  doc.set("bench", bench_name);
  doc.set("commit", sha != nullptr ? sha : "unknown");

  support::Json config{support::JsonObject{}};
  config.set("hardware_threads",
             static_cast<double>(support::ThreadPool::default_parallelism()));
  config.set("devices", static_cast<double>(result.analyses.size()));
  doc.set("config", std::move(config));

  support::Json phases{support::JsonObject{}};
  const auto phase = [&](const char* name, double wall_s) {
    support::Json p{support::JsonObject{}};
    p.set("wall_s", wall_s);
    phases.set(name, std::move(p));
  };
  phase("pinpoint", result.aggregate.pinpoint_s);
  phase("fields", result.aggregate.fields_s);
  phase("semantics", result.aggregate.semantics_s);
  phase("concat", result.aggregate.concat_s);
  phase("check", result.aggregate.check_s);
  support::Json total{support::JsonObject{}};
  total.set("wall_s", result.wall_s);
  total.set("cpu_s", result.cpu_s);
  phases.set("total", std::move(total));
  doc.set("phases", std::move(phases));

  // Work-kind metrics are deterministic across job counts, so a baseline
  // mismatch here means the analysis itself changed, not the scheduler.
  const support::metrics::Snapshot snap = support::metrics::snapshot(false);
  support::Json registry{support::JsonObject{}};
  for (const auto& c : snap.counters)
    registry.set(c.name, static_cast<double>(c.value));
  for (const auto& g : snap.gauges)
    registry.set(g.name, static_cast<double>(g.value));
  for (const auto& h : snap.histograms)
    registry.set(h.name + ".sum", static_cast<double>(h.sum));
  doc.set("registry_metrics", std::move(registry));

  // Latency distributions (Runtime-kind included): raw power-of-two
  // buckets plus precomputed percentiles, so the regression gate can
  // bound tail latency (--only-percentile phase.fields_us:p99). The gate
  // recomputes percentiles from the buckets; the precomputed values are
  // for human diffing.
  const support::metrics::Snapshot full = support::metrics::snapshot(true);
  support::Json histograms{support::JsonObject{}};
  for (const auto& h : full.histograms) {
    if (h.count == 0) continue;
    support::Json entry{support::JsonObject{}};
    entry.set("count", static_cast<double>(h.count));
    entry.set("sum", static_cast<double>(h.sum));
    support::Json buckets{support::JsonObject{}};
    for (int i = 0; i < support::metrics::kHistogramBuckets; ++i) {
      const std::uint64_t n = h.buckets[static_cast<std::size_t>(i)];
      if (n == 0) continue;
      const std::string bound =
          i == support::metrics::kHistogramBuckets - 1
              ? "inf"
              : std::to_string(std::uint64_t{1} << i);
      buckets.set(bound, static_cast<double>(n));
    }
    entry.set("buckets", std::move(buckets));
    entry.set("p50", support::metrics::histogram_percentile(h, 0.50));
    entry.set("p90", support::metrics::histogram_percentile(h, 0.90));
    entry.set("p99", support::metrics::histogram_percentile(h, 0.99));
    entry.set("max", support::metrics::histogram_percentile(h, 1.0));
    histograms.set(h.name, std::move(entry));
  }
  doc.set("histograms", std::move(histograms));

  const std::string body = doc.dump(true);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr)
    throw support::ParseError("cannot write bench artifact " + path);
  std::fwrite(body.data(), 1, body.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
}

}  // namespace firmres::bench
