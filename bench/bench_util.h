// Shared helpers for the reproduction benches: corpus setup, pipeline runs,
// and table formatting. Every bench binary prints its paper artifact
// (table/figure rows) to stdout, then runs its google-benchmark timings.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "cloud/evaluation.h"
#include "cloud/vuln_hunter.h"
#include "core/corpus_runner.h"
#include "core/pipeline.h"
#include "firmware/synthesizer.h"
#include "support/logging.h"

namespace firmres::bench {

struct CorpusRun {
  std::vector<fw::FirmwareImage> corpus;
  cloudsim::CloudNetwork net;
  /// Device-id order; index-aligned with `corpus` (ids ascend in Table I).
  std::vector<core::DeviceAnalysis> analyses;
  /// Wall/cpu split and aggregate phase timings of the analysis run.
  core::CorpusResult result;
};

/// Synthesize + analyze the full Table I corpus with the given model.
/// `jobs` as in CorpusRunner::Options (default: all hardware threads); the
/// analyses are deterministic regardless of the job count.
inline CorpusRun run_corpus(const core::SemanticsModel& model, int jobs = 0) {
  support::set_log_level(support::LogLevel::Warn);
  CorpusRun run;
  run.corpus = fw::synthesize_corpus();
  for (const auto& image : run.corpus) run.net.enroll(image);
  const core::Pipeline pipeline(model);
  const core::CorpusRunner runner(pipeline, {.jobs = jobs});
  run.result = runner.run(run.corpus);
  run.analyses = run.result.analyses;
  return run;
}

inline std::string fmt_cluster(const std::optional<int>& c) {
  return c.has_value() ? std::to_string(*c) : "-";
}

inline void print_rule(int width = 100) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace firmres::bench
