// Shared helpers for the reproduction benches: corpus setup, pipeline runs,
// and table formatting. Every bench binary prints its paper artifact
// (table/figure rows) to stdout, then runs its google-benchmark timings.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "cloud/evaluation.h"
#include "cloud/vuln_hunter.h"
#include "core/pipeline.h"
#include "firmware/synthesizer.h"
#include "support/logging.h"

namespace firmres::bench {

struct CorpusRun {
  std::vector<fw::FirmwareImage> corpus;
  cloudsim::CloudNetwork net;
  std::vector<core::DeviceAnalysis> analyses;
};

/// Synthesize + analyze the full Table I corpus with the given model.
inline CorpusRun run_corpus(const core::SemanticsModel& model) {
  support::set_log_level(support::LogLevel::Warn);
  CorpusRun run;
  run.corpus = fw::synthesize_corpus();
  for (const auto& image : run.corpus) run.net.enroll(image);
  const core::Pipeline pipeline(model);
  for (const auto& image : run.corpus)
    run.analyses.push_back(pipeline.analyze(image));
  return run;
}

inline std::string fmt_cluster(const std::optional<int>& c) {
  return c.has_value() ? std::to_string(*c) : "-";
}

inline void print_rule(int width = 100) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace firmres::bench
