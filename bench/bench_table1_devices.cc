// Table I — "List of Evaluated Devices": prints the 22-device corpus and
// benchmarks firmware synthesis (image generation throughput).
#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace {

void print_table1() {
  using namespace firmres;
  std::printf("TABLE I: LIST OF EVALUATED DEVICES (synthesized corpus)\n");
  bench::print_rule();
  std::printf("%-4s %-28s %-22s %-32s %-6s\n", "ID", "Device Model",
              "Device Type", "Firmware Version", "Kind");
  bench::print_rule();
  for (const fw::DeviceProfile& p : fw::standard_corpus()) {
    std::printf("%-4d %-28s %-22s %-32s %-6s\n", p.id,
                (p.vendor + ": " + p.model).c_str(), p.device_type.c_str(),
                p.firmware_version.c_str(),
                p.script_based ? "script" : "binary");
  }
  bench::print_rule();
  std::printf("(devices 21/22 handle device-cloud interaction in shell/PHP "
              "scripts — out of FIRMRES's binary scope, §V-B)\n\n");
}

void BM_SynthesizeDevice(benchmark::State& state) {
  const auto profile =
      firmres::fw::profile_by_id(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(firmres::fw::synthesize(profile));
  }
}
BENCHMARK(BM_SynthesizeDevice)->Arg(1)->Arg(11)->Arg(14)->Arg(21);

void BM_SynthesizeCorpus(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(firmres::fw::synthesize_corpus());
  }
}
BENCHMARK(BM_SynthesizeCorpus);

}  // namespace

int main(int argc, char** argv) {
  print_table1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
