// §V-E — "Performance of FIRMRES": per-device wall-clock and per-phase
// breakdown, side by side with the paper's measurements.
//
// Paper (Ghidra on real MIPS/ARM binaries, i5/8 GB): 154 s – 1472 s per
// firmware; phase split 37.67 / 43.83 / 3.71 / 9.96 / 4.81 %. Our substrate
// analyzes pre-lifted IR, so absolute times are ms-scale and the split
// shifts toward the reconstruction stages (see EXPERIMENTS.md).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string_view>

#include "bench_util.h"
#include "core/analysis_cache.h"
#include "core/sdk_registry.h"
#include "support/observability/metrics.h"
#include "support/strings.h"

namespace {

using namespace firmres;

std::uint64_t histogram_sum(const support::metrics::Snapshot& snap,
                            std::string_view name) {
  for (const auto& h : snap.histograms)
    if (h.name == name) return h.sum;
  return 0;
}

std::uint64_t counter_value(const support::metrics::Snapshot& snap,
                            std::string_view name) {
  for (const auto& c : snap.counters)
    if (c.name == name) return c.value;
  return 0;
}

void print_perf() {
  const core::KeywordModel model;
  // The phase split below is re-read from the metrics registry
  // (phase.*_us latency histograms, docs/OBSERVABILITY.md), so the
  // registry must start empty for this section.
  support::metrics::reset_all();
  const bench::CorpusRun run = bench::run_corpus(model);
  const support::metrics::Snapshot snap = support::metrics::snapshot(true);

  std::printf("PERFORMANCE OF FIRMRES (per firmware image)\n");
  bench::print_rule();
  std::printf("%-6s %-10s | %-9s %-9s %-9s %-9s %-9s\n", "Device",
              "total(ms)", "pinpoint", "fields", "semantics", "concat",
              "check");
  bench::print_rule();
  double min_t = 1e9, max_t = 0;
  for (const auto& a : run.analyses) {
    if (a.device_cloud_executable.empty()) continue;
    const auto& t = a.timings;
    min_t = std::min(min_t, t.total_s());
    max_t = std::max(max_t, t.total_s());
    std::printf("%-6d %-10.2f | %-9.2f %-9.2f %-9.2f %-9.2f %-9.2f\n",
                a.device_id, 1e3 * t.total_s(), 1e3 * t.pinpoint_s,
                1e3 * t.fields_s, 1e3 * t.semantics_s, 1e3 * t.concat_s,
                1e3 * t.check_s);
  }
  bench::print_rule();
  // Phase sums come from the registry's phase.*_us histograms rather than
  // re-summing PhaseTimings — one source of truth for the split.
  const double pinpoint_us =
      static_cast<double>(histogram_sum(snap, "phase.pinpoint_us"));
  const double fields_us =
      static_cast<double>(histogram_sum(snap, "phase.fields_us"));
  const double semantics_us =
      static_cast<double>(histogram_sum(snap, "phase.semantics_us"));
  const double concat_us =
      static_cast<double>(histogram_sum(snap, "phase.concat_us"));
  const double check_us =
      static_cast<double>(histogram_sum(snap, "phase.check_us"));
  const double total =
      pinpoint_us + fields_us + semantics_us + concat_us + check_us;
  std::printf(
      "fastest firmware: %.2f ms   slowest: %.2f ms   (paper: 154 s / 1472 "
      "s on Ghidra-lifted binaries)\n",
      1e3 * min_t, 1e3 * max_t);
  std::printf(
      "phase split (registry):  pinpoint %.2f%%  fields %.2f%%  semantics "
      "%.2f%%  concat %.2f%%  check %.2f%%\n",
      100 * pinpoint_us / total, 100 * fields_us / total,
      100 * semantics_us / total, 100 * concat_us / total,
      100 * check_us / total);
  std::printf(
      "phase split (paper):     pinpoint 37.67%%  fields 43.83%%  semantics "
      "3.71%%  concat 9.96%%  check 4.81%%\n");
  // Tail behavior across devices, straight from the registry's latency
  // buckets — the distributions the serve-mode heartbeat and the
  // --only-percentile regression gate watch (docs/OBSERVABILITY.md).
  for (const auto& h : snap.histograms) {
    if (h.count == 0 || h.name.rfind("phase.", 0) != 0) continue;
    std::printf(
        "latency %-18s p50 %8.1f us  p90 %8.1f us  p99 %8.1f us  max %8.1f "
        "us  (%llu devices)\n",
        h.name.c_str() + 6, support::metrics::histogram_percentile(h, 0.50),
        support::metrics::histogram_percentile(h, 0.90),
        support::metrics::histogram_percentile(h, 0.99),
        support::metrics::histogram_percentile(h, 1.0),
        static_cast<unsigned long long>(h.count));
  }
  std::printf(
      "work counters (registry): %llu taint steps, %llu messages, %llu "
      "flaw alarms across %llu devices\n\n",
      static_cast<unsigned long long>(counter_value(snap, "taint.steps")),
      static_cast<unsigned long long>(
          counter_value(snap, "pipeline.messages_reconstructed")),
      static_cast<unsigned long long>(
          counter_value(snap, "pipeline.flaw_alarms")),
      static_cast<unsigned long long>(
          counter_value(snap, "pipeline.devices_analyzed")));
}

// Shared-library dedup: the SDK corpus links the same vendor-SDK functions
// into every image; with the component registry their value-flow solves are
// substituted by certified summaries instead of re-run per device
// (docs/COMPONENTS.md). Reports are byte-identical either way (minus the
// components blocks); only the analyze phases should get faster.
void print_sdk_dedup(const std::string& baseline_json,
                     const std::string& registry_json) {
  const core::KeywordModel model;
  const analysis::components::LibraryRegistry registry =
      core::build_sdk_registry();

  support::metrics::reset_all();
  const bench::CorpusRun plain = bench::run_custom_corpus(
      fw::synthesize_sdk_corpus(), model, core::Pipeline::Options{});
  if (!baseline_json.empty())
    bench::write_bench_json(baseline_json, "bench_perf_phases_sdk",
                            plain.result);

  support::metrics::reset_all();
  core::Pipeline::Options with_registry;
  with_registry.registry = &registry;
  const bench::CorpusRun matched = bench::run_custom_corpus(
      fw::synthesize_sdk_corpus(), model, with_registry);
  if (!registry_json.empty())
    bench::write_bench_json(registry_json, "bench_perf_phases_sdk",
                            matched.result);
  const support::metrics::Snapshot snap = support::metrics::snapshot(false);

  std::printf("SHARED-LIBRARY DEDUP (%zu SDK-linked images, jobs=all)\n",
              plain.corpus.size());
  bench::print_rule();
  std::printf("%-22s %-14s %-14s %-10s\n", "", "no registry", "registry",
              "ratio");
  bench::print_rule();
  const auto row = [](const char* name, double base_s, double cur_s) {
    std::printf("%-22s %-14.2f %-14.2f %-10s\n", name, 1e3 * base_s,
                1e3 * cur_s,
                base_s <= 0.0
                    ? "-"
                    : support::format("%.2fx", base_s / cur_s).c_str());
  };
  row("pinpoint (ms)", plain.result.aggregate.pinpoint_s,
      matched.result.aggregate.pinpoint_s);
  row("fields (ms)", plain.result.aggregate.fields_s,
      matched.result.aggregate.fields_s);
  row("analyze total (ms)",
      plain.result.aggregate.pinpoint_s + plain.result.aggregate.fields_s,
      matched.result.aggregate.pinpoint_s +
          matched.result.aggregate.fields_s);
  bench::print_rule();
  std::printf(
      "%llu function solves substituted from the registry across the "
      "corpus\n\n",
      static_cast<unsigned long long>(
          counter_value(snap, "valueflow.substituted_functions")));
}

// Memory def-use visibility: the memory-staging corpus routes message
// fields through global/heap cells that separate writer functions fill
// (docs/POINTSTO.md). The per-device columns come from the report's
// memory_flow block; the work counters re-read the registry's pointsto.*
// Work metrics, so the two sources must agree.
void print_memory_flow() {
  const core::KeywordModel model;
  support::metrics::reset_all();
  const bench::CorpusRun run = bench::run_custom_corpus(
      fw::synthesize_memory_corpus(), model, core::Pipeline::Options{});
  const support::metrics::Snapshot snap = support::metrics::snapshot(false);

  std::printf("MEMORY FLOW (points-to over %zu memory-staging images)\n",
              run.corpus.size());
  bench::print_rule();
  std::printf("%-6s %-8s %-10s %-11s %-8s %-13s %-9s\n", "Device", "loads",
              "resolved", "via-stores", "stores", "never-loaded", "mem-term");
  bench::print_rule();
  for (const auto& a : run.analyses) {
    if (a.device_cloud_executable.empty()) continue;
    const auto& mf = a.memory_flow;
    std::printf("%-6d %-8llu %-10llu %-11llu %-8llu %-13llu %-9d\n",
                a.device_id, static_cast<unsigned long long>(mf.loads_total),
                static_cast<unsigned long long>(mf.loads_resolved),
                static_cast<unsigned long long>(mf.loads_with_stores),
                static_cast<unsigned long long>(mf.stores_total),
                static_cast<unsigned long long>(mf.stores_never_loaded),
                a.memory_terminations);
  }
  bench::print_rule();
  std::printf(
      "work counters (registry): %llu points-to solves, %llu/%llu loads "
      "resolved, %llu stores indexed\n\n",
      static_cast<unsigned long long>(counter_value(snap, "pointsto.solves")),
      static_cast<unsigned long long>(
          counter_value(snap, "pointsto.loads_resolved")),
      static_cast<unsigned long long>(
          counter_value(snap, "pointsto.loads_total")),
      static_cast<unsigned long long>(
          counter_value(snap, "pointsto.stores_total")));
}

// Corpus-level parallel fan-out: wall clock vs. CPU time per job count.
// The analyses are bit-identical across job counts (CorpusRunner's
// determinism guarantee); only the wall clock should move. Speedup is
// bounded by the machine — on a single hardware thread the jobs>1 rows
// show overhead, not gains.
void print_parallel_speedup() {
  const core::KeywordModel model;
  const auto corpus = fw::synthesize_corpus();
  const core::Pipeline pipeline(model);

  std::printf("PARALLEL CORPUS ANALYSIS (%zu images, %zu hardware threads)\n",
              corpus.size(), support::ThreadPool::default_parallelism());
  bench::print_rule();
  std::printf("%-6s %-12s %-12s %-10s %-12s\n", "jobs", "wall(ms)", "cpu(ms)",
              "cpu/wall", "vs jobs=1");
  bench::print_rule();
  double wall1 = 0.0;
  for (const int jobs : {1, 2, 4}) {
    const core::CorpusRunner runner(pipeline, {.jobs = jobs});
    const core::CorpusResult result = runner.run(corpus);
    if (jobs == 1) wall1 = result.wall_s;
    std::printf("%-6d %-12.2f %-12.2f %-10.2f %-12s\n", jobs,
                1e3 * result.wall_s, 1e3 * result.cpu_s, result.speedup(),
                support::format("%.2fx", wall1 / result.wall_s).c_str());
  }
  bench::print_rule();
  std::putchar('\n');
}

void BM_PhasePinpoint(benchmark::State& state) {
  const auto image = fw::synthesize(fw::profile_by_id(14));
  const core::ExecutableIdentifier identifier;
  const auto execs = image.executables();
  for (auto _ : state) {
    for (const ir::Program* p : execs)
      benchmark::DoNotOptimize(identifier.analyze(*p));
  }
}
BENCHMARK(BM_PhasePinpoint);

void BM_PhaseTaint(benchmark::State& state) {
  const auto image = fw::synthesize(fw::profile_by_id(14));
  const auto* exec = image.file(image.truth.device_cloud_executable);
  const analysis::CallGraph cg(*exec->program);
  const core::MftBuilder builder(*exec->program, cg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(builder.build_all());
  }
}
BENCHMARK(BM_PhaseTaint);

void BM_PhaseReconstruct(benchmark::State& state) {
  static const core::KeywordModel model;
  const auto image = fw::synthesize(fw::profile_by_id(14));
  const auto* exec = image.file(image.truth.device_cloud_executable);
  const analysis::CallGraph cg(*exec->program);
  const core::MftBuilder builder(*exec->program, cg);
  const auto mfts = builder.build_all();
  const core::Reconstructor reconstructor(model);
  for (auto _ : state) {
    benchmark::DoNotOptimize(reconstructor.reconstruct(mfts, exec->path));
  }
}
BENCHMARK(BM_PhaseReconstruct);

// Whole-corpus analysis per job count — the parallel-speedup series for
// BENCH JSON output (--benchmark_format=json); real time is the metric.
void BM_CorpusAnalyze(benchmark::State& state) {
  static const core::KeywordModel model;
  static const auto corpus = fw::synthesize_corpus();
  const core::Pipeline pipeline(model);
  const core::CorpusRunner runner(
      pipeline, {.jobs = static_cast<int>(state.range(0))});
  for (auto _ : state) {
    benchmark::DoNotOptimize(runner.run(corpus));
  }
}
BENCHMARK(BM_CorpusAnalyze)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  firmres::support::set_log_level(firmres::support::LogLevel::Warn);
  const std::string json_path = bench::take_json_flag(argc, argv);
  // --cache-dir routes the --json artifact pass through an AnalysisCache:
  // run once for a cold artifact, rerun with the same directory for a warm
  // one, and compare the pair with tools/check_perf_regression.py and a
  // negative threshold to require the speedup (docs/CACHING.md).
  const std::string cache_dir =
      bench::take_value_flag(argc, argv, "--cache-dir");
  // --sdk-json / --sdk-registry-json write the shared-library corpus
  // artifact pair (no-registry vs registry-matched); CI compares them with
  // check_perf_regression.py and a negative threshold to require the
  // dedup speedup (docs/COMPONENTS.md).
  const std::string sdk_json =
      bench::take_value_flag(argc, argv, "--sdk-json");
  const std::string sdk_registry_json =
      bench::take_value_flag(argc, argv, "--sdk-registry-json");
  print_perf();
  print_memory_flow();
  print_parallel_speedup();
  print_sdk_dedup(sdk_json, sdk_registry_json);
  if (!json_path.empty()) {
    // Fresh registry + run so the artifact reflects one corpus pass, not
    // the accumulated counters of the sections above.
    support::metrics::reset_all();
    const core::KeywordModel model;
    std::unique_ptr<core::AnalysisCache> cache;
    if (!cache_dir.empty())
      cache = std::make_unique<core::AnalysisCache>(
          core::AnalysisCache::Options{.dir = cache_dir});
    const bench::CorpusRun run =
        bench::run_corpus(model, /*jobs=*/0, cache.get());
    bench::write_bench_json(json_path, "bench_perf_phases", run.result);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
