// Ablation — field-semantics recovery (§IV-C): keyword dictionary vs plain
// TextCNN vs attention+TextCNN, measured against synthesizer ground truth
// on a held-out slice set.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "support/strings.h"
#include "nlp/trainer.h"

namespace {

using namespace firmres;

double truth_accuracy_keyword(const std::vector<nlp::LabeledSlice>& slices) {
  int correct = 0;
  for (const nlp::LabeledSlice& s : slices)
    correct += fw::keyword_label(s.text) == s.truth ? 1 : 0;
  return slices.empty() ? 0.0
                        : static_cast<double>(correct) /
                              static_cast<double>(slices.size());
}

nlp::Dataset g_dataset;

void print_ablation() {
  nlp::DatasetConfig dc;
  dc.num_devices = 24;
  g_dataset = nlp::build_dataset(dc);

  nlp::TrainConfig tc;
  tc.epochs = 3;

  nlp::ModelConfig with_attention;
  nlp::ModelConfig without_attention;
  without_attention.use_attention = false;

  const auto attn = nlp::train_classifier(g_dataset, with_attention, tc);
  const auto plain = nlp::train_classifier(g_dataset, without_attention, tc);

  std::printf("ABLATION: FIELD SEMANTICS RECOVERY (§IV-C)\n");
  bench::print_rule();
  std::printf("%-36s %-18s %-18s\n", "model", "test acc (labels)",
              "test acc (truth)");
  bench::print_rule();
  std::printf("%-36s %-18s %-18s\n", "keyword dictionary (auto-labeler)",
              "-",
              support::format("%.2f%%",
                              100 * truth_accuracy_keyword(g_dataset.test))
                  .c_str());
  std::printf(
      "%-36s %-18s %-18s\n", "TextCNN (no attention)",
      support::format("%.2f%%",
                      100 * nlp::evaluate_labels(*plain, g_dataset.test)
                                .accuracy())
          .c_str(),
      support::format("%.2f%%",
                      100 * nlp::evaluate_truth(*plain, g_dataset.test)
                                .accuracy())
          .c_str());
  std::printf(
      "%-36s %-18s %-18s\n", "attention + TextCNN (full)",
      support::format("%.2f%%",
                      100 * nlp::evaluate_labels(*attn, g_dataset.test)
                                .accuracy())
          .c_str(),
      support::format("%.2f%%",
                      100 * nlp::evaluate_truth(*attn, g_dataset.test)
                                .accuracy())
          .c_str());
  bench::print_rule();
  std::printf(
      "The learned models absorb contextual cues (call chains, store keys) "
      "the dictionary cannot;\nattention supplies the global context the "
      "paper attributes to its BERT stage.\n\n");
}

void BM_KeywordClassify(benchmark::State& state) {
  const std::string slice =
      g_dataset.test.empty() ? "CALL nvram_get mac" : g_dataset.test[0].text;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fw::keyword_label(slice));
  }
}
BENCHMARK(BM_KeywordClassify);

}  // namespace

int main(int argc, char** argv) {
  firmres::support::set_log_level(firmres::support::LogLevel::Warn);
  print_ablation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
